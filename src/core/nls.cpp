#include "core/nls.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "net/flux.hpp"
#include "numeric/matrix.hpp"
#include "numeric/nnls.hpp"
#include "numeric/parallel.hpp"
#include "numeric/simd/kernels.hpp"
#include "obs/instrument.hpp"

namespace fluxfp::core {

std::vector<double> robust_weights(std::span<const double> residuals,
                                   const RobustFitConfig& config) {
  std::vector<double> w;
  robust_weights(residuals, config, w);
  return w;
}

void robust_weights(std::span<const double> residuals,
                    const RobustFitConfig& config, std::vector<double>& out) {
  std::vector<double>& w = out;
  w.assign(residuals.size(), 1.0);
  if (residuals.empty() || config.loss == RobustLoss::kNone) {
    return;
  }
  std::vector<double> abs_r(residuals.size());
  for (std::size_t i = 0; i < residuals.size(); ++i) {
    abs_r[i] = std::abs(residuals[i]);
  }
  if (config.loss == RobustLoss::kTrimmed) {
    const double trim = std::clamp(config.trim_fraction, 0.0, 0.9);
    std::vector<double> sorted = abs_r;
    const std::size_t kept = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil((1.0 - trim) * static_cast<double>(sorted.size()))));
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<long>(kept - 1),
                     sorted.end());
    const double threshold = sorted[kept - 1];
    for (std::size_t i = 0; i < abs_r.size(); ++i) {
      w[i] = abs_r[i] <= threshold ? 1.0 : 0.0;
    }
    return;
  }
  // Huber: robust scale from the normalized MAD about the median residual.
  std::vector<double> tmp(residuals.begin(), residuals.end());
  const std::size_t mid = tmp.size() / 2;
  std::nth_element(tmp.begin(), tmp.begin() + static_cast<long>(mid),
                   tmp.end());
  const double med = tmp[mid];
  for (std::size_t i = 0; i < residuals.size(); ++i) {
    tmp[i] = std::abs(residuals[i] - med);
  }
  std::nth_element(tmp.begin(), tmp.begin() + static_cast<long>(mid),
                   tmp.end());
  const double sigma = 1.4826 * tmp[mid];
  double max_abs = 0.0;
  for (double a : abs_r) {
    max_abs = std::max(max_abs, a);
  }
  if (!(sigma > 1e-12 * (1.0 + max_abs))) {
    return;  // degenerate scale: most residuals identical, nothing to clip
  }
  const double clip = config.huber_k * sigma;
  for (std::size_t i = 0; i < abs_r.size(); ++i) {
    w[i] = abs_r[i] > clip ? clip / abs_r[i] : 1.0;
  }
#if defined(FLUXFP_OBS_ENABLED)
  if (obs::enabled()) {
    std::uint64_t down = 0;
    for (double wi : w) {
      down += wi < 1.0 ? 1 : 0;
    }
    FLUXFP_OBS_COUNTER_ADD("fluxfp_core_robust_downweighted_total",
                           "Readings clipped by the Huber weight", down);
  }
#endif
}

SparseObjective::SparseObjective(const ObservationModel& model,
                                 std::vector<geom::Vec2> sample_positions,
                                 std::vector<double> measured)
    : SparseObjective(model, std::move(sample_positions), std::move(measured),
                      std::vector<bool>()) {}

SparseObjective::SparseObjective(const ObservationModel& model,
                                 std::vector<geom::Vec2> sample_positions,
                                 std::vector<double> measured,
                                 const std::vector<bool>& valid)
    : model_(model.clone()),
      sample_positions_(std::move(sample_positions)),
      // Point sites: both endpoints at the sniffer position.
      positions_b_(sample_positions_),
      measured_(std::move(measured)) {
  compact(valid);
}

SparseObjective::SparseObjective(const ObservationModel& model,
                                 std::vector<Site> sites,
                                 std::vector<double> measured)
    : SparseObjective(model.clone(), std::move(sites), std::move(measured),
                      std::vector<bool>()) {}

SparseObjective::SparseObjective(const ObservationModel& model,
                                 std::vector<Site> sites,
                                 std::vector<double> measured,
                                 const std::vector<bool>& valid)
    : SparseObjective(model.clone(), std::move(sites), std::move(measured),
                      valid) {}

SparseObjective::SparseObjective(std::shared_ptr<const ObservationModel> model,
                                 std::vector<Site> sites,
                                 std::vector<double> measured,
                                 const std::vector<bool>& valid)
    : model_(std::move(model)), measured_(std::move(measured)) {
  if (!model_) {
    throw std::invalid_argument("SparseObjective: null model");
  }
  sample_positions_.reserve(sites.size());
  positions_b_.reserve(sites.size());
  for (const Site& s : sites) {
    sample_positions_.push_back(s.a);
    positions_b_.push_back(s.b);
  }
  compact(valid);
}

void SparseObjective::compact(const std::vector<bool>& valid) {
  if (sample_positions_.empty() ||
      sample_positions_.size() != measured_.size() ||
      (!valid.empty() && valid.size() != measured_.size())) {
    throw std::invalid_argument(
        "SparseObjective: samples empty or size mismatch");
  }
  // Compact to live samples: masked-out or missing readings carry no
  // evidence and are excluded from the fit entirely. A repeated site (the
  // same sniffer — or the same link, BOTH endpoints equal — reported twice
  // in one snapshot; routine in the streaming runtime, where transports
  // duplicate reports) keeps the LATEST live reading rather than
  // double-counting the row. "Latest" is pinned by arrival order: the
  // ascending-index scan overwrites the surviving row with every later
  // duplicate it meets, so the tie-break at equal timestamps is
  // last-arrival wins, index-ordered — independent of thread count, which
  // never reorders the input vector.
  std::size_t live = 0;
  for (std::size_t i = 0; i < measured_.size(); ++i) {
    const bool ok =
        (valid.empty() || valid[i]) && !net::is_missing(measured_[i]);
    if (!ok) {
      continue;
    }
    bool duplicate = false;
    for (std::size_t j = 0; j < live; ++j) {
      if (sample_positions_[j].x == sample_positions_[i].x &&
          sample_positions_[j].y == sample_positions_[i].y &&
          positions_b_[j].x == positions_b_[i].x &&
          positions_b_[j].y == positions_b_[i].y) {
        measured_[j] = measured_[i];
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      continue;
    }
    sample_positions_[live] = sample_positions_[i];
    positions_b_[live] = positions_b_[i];
    measured_[live] = measured_[i];
    ++live;
  }
  masked_count_ = measured_.size() - live;
  sample_positions_.resize(live);
  positions_b_.resize(live);
  measured_.resize(live);
  measured_norm_ = numeric::norm(measured_);
  // Structure-of-arrays coordinate rows for the SIMD shape kernels, built
  // once per objective over the compacted live sites.
  qx_.resize(live);
  qy_.resize(live);
  bx_.resize(live);
  by_.resize(live);
  for (std::size_t i = 0; i < live; ++i) {
    qx_[i] = sample_positions_[i].x;
    qy_[i] = sample_positions_[i].y;
    bx_[i] = positions_b_[i].x;
    by_[i] = positions_b_[i].y;
  }
}

std::vector<double> SparseObjective::shape_column(geom::Vec2 sink) const {
  std::vector<double> col;
  shape_column(sink, col);
  return col;
}

void SparseObjective::shape_column(geom::Vec2 sink,
                                   std::vector<double>& out) const {
  out.resize(sample_positions_.size());
  shape_column_into(sink, out);
}

void SparseObjective::shape_column_into(geom::Vec2 sink,
                                        std::span<double> out) const {
  const std::size_t n = sample_positions_.size();
  // Vectorized fast path over the SoA coordinate rows — ONE virtual call
  // per column, never per element, so the SIMD hot path is untouched by
  // the model polymorphism. Falls back to the scalar loop (which preserves
  // the legacy throw-on-non-finite behavior) when the backend declines:
  // no vector backend built, unrecognized geometry, or a non-finite
  // coordinate. Row scaling is a separate element-wise pass: same
  // per-element arithmetic as the legacy fused loop, bit for bit.
  const SiteRows rows{qx_.data(), qy_.data(), bx_.data(), by_.data()};
  if (!model_->site_shape_row(sink, rows, n, out.data())) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = model_->site_shape(
          sink, Site{sample_positions_[i], positions_b_[i]});
    }
  }
  if (!row_scale_.empty()) {
    numeric::simd::scale_rows(out.data(), row_scale_.data(), n);
  }
}

void SparseObjective::shape_columns(std::span<const geom::Vec2> sinks,
                                    ColumnBlock& out) const {
  out.resize(sample_positions_.size(), sinks.size());
  numeric::parallel_for(0, sinks.size(), [&](std::size_t c) {
    shape_column_into(sinks[c], out.column(c));
  });
}

StretchFit SparseObjective::fit(std::span<const geom::Vec2> sinks) const {
  // Scratch is thread-local: fit() runs inside parallel regions (smooth
  // localizer restarts, experiment trials) where shared mutable members
  // would race, while per-call vectors would re-pay the allocations this
  // reuse exists to remove.
  thread_local std::vector<std::vector<double>> cols;
  thread_local std::vector<std::span<const double>> spans;
  if (cols.size() < sinks.size()) {
    cols.resize(sinks.size());
  }
  spans.resize(sinks.size());
  for (std::size_t j = 0; j < sinks.size(); ++j) {
    shape_column(sinks[j], cols[j]);
    spans[j] = cols[j];
  }
  return fit_columns(spans);
}

StretchFit SparseObjective::fit_columns(
    std::span<const std::span<const double>> columns) const {
  const std::size_t n = sample_positions_.size();
  const std::size_t k = columns.size();
  StretchFit out;
  if (k == 0) {
    out.residual = measured_norm_;
    return out;
  }
  if (n == 0) {
    // Every sample masked out: no evidence, zero residual, zero stretches.
    out.stretches.assign(k, 0.0);
    return out;
  }
  if (k == 1) {
    const std::span<const double> f = columns[0];
    const double s = numeric::nnls_single(f, measured_);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = s * f[i] - measured_[i];
      acc += d * d;
    }
    out.residual = std::sqrt(acc);
    out.stretches = {s};
    return out;
  }
  numeric::Matrix a(n, k);
  for (std::size_t j = 0; j < k; ++j) {
    const std::span<const double> col = columns[j];
    if (col.size() != n) {
      throw std::invalid_argument("fit_columns: column length mismatch");
    }
    for (std::size_t i = 0; i < n; ++i) {
      a(i, j) = col[i];
    }
  }
  numeric::NnlsResult r = numeric::nnls(a, measured_);
  out.residual = r.residual;
  out.stretches = std::move(r.x);
  return out;
}

std::vector<double> SparseObjective::residuals_at(
    std::span<const geom::Vec2> sinks,
    std::span<const double> stretches) const {
  std::vector<double> r;
  residuals_at(sinks, stretches, r);
  return r;
}

void SparseObjective::residuals_at(std::span<const geom::Vec2> sinks,
                                   std::span<const double> stretches,
                                   std::vector<double>& out) const {
  if (sinks.size() != stretches.size()) {
    throw std::invalid_argument("residuals_at: sinks/stretches mismatch");
  }
  const std::size_t n = sample_positions_.size();
  out.assign(n, 0.0);
  thread_local std::vector<double> col;
  for (std::size_t j = 0; j < sinks.size(); ++j) {
    shape_column(sinks[j], col);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] += stretches[j] * col[i];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i] -= measured_[i];
  }
}

SparseObjective SparseObjective::reweighted(
    std::span<const double> weights) const {
  if (weights.size() != sample_positions_.size()) {
    throw std::invalid_argument("reweighted: weight count mismatch");
  }
  SparseObjective out(*this);
  if (out.row_scale_.empty()) {
    out.row_scale_.assign(weights.size(), 1.0);
  }
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (!(weights[i] >= 0.0)) {
      throw std::invalid_argument("reweighted: negative weight");
    }
    const double s = std::sqrt(weights[i]);
    out.row_scale_[i] *= s;
    out.measured_[i] = measured_[i] * s;
  }
  out.measured_norm_ = numeric::norm(out.measured_);
  return out;
}

void SparseObjective::reweighted_into(std::span<const double> weights,
                                      SparseObjective& out) const {
  if (weights.size() != sample_positions_.size()) {
    throw std::invalid_argument("reweighted: weight count mismatch");
  }
  // Copy-assignment reuses out's vector capacity, so a per-epoch IRLS
  // round allocates nothing once the buffers are warm.
  out = *this;
  if (out.row_scale_.empty()) {
    out.row_scale_.assign(weights.size(), 1.0);
  }
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (!(weights[i] >= 0.0)) {
      throw std::invalid_argument("reweighted: negative weight");
    }
    const double s = std::sqrt(weights[i]);
    out.row_scale_[i] *= s;
    out.measured_[i] = measured_[i] * s;
  }
  out.measured_norm_ = numeric::norm(out.measured_);
}

StretchFit SparseObjective::fit_robust(std::span<const geom::Vec2> sinks,
                                       const RobustFitConfig& config) const {
  StretchFit fit = this->fit(sinks);
  if (config.loss == RobustLoss::kNone || sample_positions_.empty()) {
    return fit;
  }
  // Residual/weight buffers live across the IRLS rounds instead of being
  // reallocated inside each one.
  std::vector<double> r;
  std::vector<double> w;
  for (int round = 0; round < config.reweight_rounds; ++round) {
    residuals_at(sinks, fit.stretches, r);
    robust_weights(r, config, w);
    const StretchFit weighted = reweighted(w).fit(sinks);
    fit.stretches = weighted.stretches;
  }
  // Report the robust stretches at their *unweighted* residual so results
  // stay comparable with plain fits.
  residuals_at(sinks, fit.stretches, r);
  fit.residual = numeric::norm(r);
  return fit;
}

namespace {

/// Cholesky solve of the dense k x k system g x = c restricted to the
/// columns in idx[0..m); returns false if the submatrix is not
/// (numerically) SPD. On success writes the m support values to z.
bool solve_support(std::span<const double> g, std::size_t k,
                   std::span<const double> c, const std::size_t* idx,
                   std::size_t m, double* z) {
  double l[kMaxGramUsers * kMaxGramUsers];
  // Cholesky of the m x m submatrix.
  for (std::size_t j = 0; j < m; ++j) {
    double diag = g[idx[j] * k + idx[j]];
    for (std::size_t t = 0; t < j; ++t) {
      diag -= l[j * m + t] * l[j * m + t];
    }
    if (!(diag > 1e-14)) {
      return false;
    }
    l[j * m + j] = std::sqrt(diag);
    for (std::size_t i = j + 1; i < m; ++i) {
      double v = g[idx[i] * k + idx[j]];
      for (std::size_t t = 0; t < j; ++t) {
        v -= l[i * m + t] * l[j * m + t];
      }
      l[i * m + j] = v / l[j * m + j];
    }
  }
  double y[kMaxGramUsers];
  for (std::size_t i = 0; i < m; ++i) {
    double v = c[idx[i]];
    for (std::size_t t = 0; t < i; ++t) {
      v -= l[i * m + t] * y[t];
    }
    y[i] = v / l[i * m + i];
  }
  for (std::size_t ii = m; ii-- > 0;) {
    double v = y[ii];
    for (std::size_t t = ii + 1; t < m; ++t) {
      v -= l[t * m + ii] * z[t];
    }
    z[ii] = v / l[ii * m + ii];
  }
  return true;
}

/// Subset solve used by the exhaustive enumeration: like solve_support but
/// additionally rejects solutions with a negative entry and reports the
/// full-size solution plus s^T c.
bool solve_subset(std::span<const double> g, std::size_t k,
                  std::span<const double> c, unsigned mask,
                  std::span<double> x, double& sc) {
  std::size_t idx[kMaxGramUsers];
  std::size_t m = 0;
  for (std::size_t j = 0; j < k; ++j) {
    if (mask & (1u << j)) {
      idx[m++] = j;
    }
  }
  double l[kMaxGramUsers * kMaxGramUsers];
  // Cholesky of the m x m submatrix.
  for (std::size_t j = 0; j < m; ++j) {
    double diag = g[idx[j] * k + idx[j]];
    for (std::size_t t = 0; t < j; ++t) {
      diag -= l[j * m + t] * l[j * m + t];
    }
    if (!(diag > 1e-14)) {
      return false;
    }
    l[j * m + j] = std::sqrt(diag);
    for (std::size_t i = j + 1; i < m; ++i) {
      double v = g[idx[i] * k + idx[j]];
      for (std::size_t t = 0; t < j; ++t) {
        v -= l[i * m + t] * l[j * m + t];
      }
      l[i * m + j] = v / l[j * m + j];
    }
  }
  double y[kMaxGramUsers];
  for (std::size_t i = 0; i < m; ++i) {
    double v = c[idx[i]];
    for (std::size_t t = 0; t < i; ++t) {
      v -= l[i * m + t] * y[t];
    }
    y[i] = v / l[i * m + i];
  }
  double z[kMaxGramUsers];
  for (std::size_t ii = m; ii-- > 0;) {
    double v = y[ii];
    for (std::size_t t = ii + 1; t < m; ++t) {
      v -= l[t * m + ii] * z[t];
    }
    z[ii] = v / l[ii * m + ii];
    if (z[ii] < 0.0) {
      return false;
    }
  }
  for (std::size_t j = 0; j < k; ++j) {
    x[j] = 0.0;
  }
  sc = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    x[idx[j]] = z[j];
    sc += z[j] * c[idx[j]];
  }
  return true;
}

}  // namespace

namespace {

/// Lawson–Hanson active-set NNLS on the normal equations: minimizes
/// 0.5 s^T G s - c^T s over s >= 0. Used for k above the enumeration limit.
/// `s` must hold k entries.
void nnls_gram_active_set(std::span<const double> g, std::size_t k,
                          std::span<const double> c, double* s) {
  for (std::size_t j = 0; j < k; ++j) {
    s[j] = 0.0;
  }
  bool passive[kMaxGramUsers] = {};
  std::size_t idx[kMaxGramUsers];
  double z[kMaxGramUsers];
  double cnorm = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    cnorm = std::max(cnorm, std::abs(c[j]));
  }
  const double tol = 1e-10 * (1.0 + cnorm);
  const int max_iter = static_cast<int>(3 * k) + 10;

  for (int iter = 0; iter < max_iter; ++iter) {
    // Gradient of the residual objective: w = c - G s.
    double wmax = tol;
    std::size_t jmax = k;
    for (std::size_t j = 0; j < k; ++j) {
      if (passive[j]) {
        continue;
      }
      double w = c[j];
      for (std::size_t t = 0; t < k; ++t) {
        w -= g[j * k + t] * s[t];
      }
      if (w > wmax) {
        wmax = w;
        jmax = j;
      }
    }
    if (jmax == k) {
      return;  // KKT satisfied
    }
    passive[jmax] = true;

    for (int inner = 0; inner < max_iter; ++inner) {
      std::size_t m = 0;
      for (std::size_t j = 0; j < k; ++j) {
        if (passive[j]) {
          idx[m++] = j;
        }
      }
      if (m == 0) {
        break;
      }
      if (!solve_support(g, k, c, idx, m, z)) {
        passive[jmax] = false;  // near-singular: drop the newest column
        break;
      }
      bool feasible = true;
      double alpha = 1.0;
      for (std::size_t t = 0; t < m; ++t) {
        if (z[t] <= 0.0) {
          feasible = false;
          const double denom = s[idx[t]] - z[t];
          if (denom > 0.0) {
            alpha = std::min(alpha, s[idx[t]] / denom);
          }
        }
      }
      if (feasible) {
        for (std::size_t j = 0; j < k; ++j) {
          s[j] = 0.0;
        }
        for (std::size_t t = 0; t < m; ++t) {
          s[idx[t]] = z[t];
        }
        break;
      }
      for (std::size_t t = 0; t < m; ++t) {
        s[idx[t]] += alpha * (z[t] - s[idx[t]]);
        if (s[idx[t]] <= tol) {
          s[idx[t]] = 0.0;
          passive[idx[t]] = false;
        }
      }
    }
  }
}

/// Allocation-free core of nnls_from_gram: writes the k stretches to `s`
/// (stack buffer of the caller) and returns the residual. The public
/// wrapper and the per-candidate batch evaluator share this exact
/// arithmetic, which is what makes parallel batch output bit-identical to
/// serial StretchFit-returning calls.
double nnls_from_gram_into(std::span<const double> g, std::size_t k,
                           std::span<const double> c, double b2, double* s) {
  for (std::size_t j = 0; j < k; ++j) {
    s[j] = 0.0;
  }

  if (k > kGramEnumerationLimit) {
    nnls_gram_active_set(g, k, c, s);
    // residual^2 = b2 - 2 s^T c + s^T G s.
    double sc = 0.0;
    double sgs = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      sc += s[i] * c[i];
      double gi = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        gi += g[i * k + j] * s[j];
      }
      sgs += s[i] * gi;
    }
    return std::sqrt(std::max(b2 - 2.0 * sc + sgs, 0.0));
  }

  // Fast path: if the unconstrained optimum over all k columns is already
  // non-negative it *is* the NNLS optimum — one Cholesky instead of the
  // subset sweep. This covers the common well-separated-columns case.
  double best_r2 = b2;
  double x[kMaxGramUsers];
  const unsigned full = (1u << k) - 1;
  {
    double sc = 0.0;
    if (solve_subset(g, k, c, full, std::span<double>(x, k), sc)) {
      for (std::size_t j = 0; j < k; ++j) {
        s[j] = x[j];
      }
      return std::sqrt(std::max(b2 - sc, 0.0));
    }
  }
  // Empty support: s = 0, residual^2 = b2. For a subset solution solving
  // exactly on its support, residual^2 = b2 - s^T c.
  for (unsigned mask = 1; mask < full; ++mask) {
    double sc = 0.0;
    if (!solve_subset(g, k, c, mask, std::span<double>(x, k), sc)) {
      continue;
    }
    const double r2 = b2 - sc;
    if (r2 < best_r2) {
      best_r2 = r2;
      for (std::size_t j = 0; j < k; ++j) {
        s[j] = x[j];
      }
    }
  }
  return std::sqrt(std::max(best_r2, 0.0));
}

}  // namespace

StretchFit nnls_from_gram(std::span<const double> g, std::size_t k,
                          std::span<const double> c, double b2) {
  if (k == 0 || k > kMaxGramUsers || g.size() != k * k || c.size() != k) {
    throw std::invalid_argument("nnls_from_gram: bad dimensions");
  }
  StretchFit out;
  double s[kMaxGramUsers];
  out.residual = nnls_from_gram_into(g, k, c, b2, s);
  out.stretches.assign(s, s + k);
  return out;
}

ConditionalFit::ConditionalFit(
    const SparseObjective& obj,
    std::span<const std::span<const double>> fixed_columns,
    std::size_t vary_index)
    : obj_(&obj), fixed_count_(fixed_columns.size()), vary_index_(vary_index) {
  const std::size_t kf = fixed_count_;
  if (kf + 1 > kMaxGramUsers || vary_index > kf) {
    throw std::invalid_argument("ConditionalFit: bad dimensions");
  }
  const std::size_t n = obj.sample_count();
  for (std::size_t a = 0; a < kf; ++a) {
    if (fixed_columns[a].size() != n) {
      throw std::invalid_argument("ConditionalFit: column length mismatch");
    }
    fixed_[a] = fixed_columns[a];
  }
  const std::vector<double>& b = obj.measured();
  // Gram block of the fixed columns via the dot kernel: exact legacy
  // accumulation in the scalar backend; vector backends change only the
  // summation order (tolerance-tested).
  for (std::size_t a = 0; a < kf; ++a) {
    for (std::size_t bI = a; bI < kf; ++bI) {
      const double acc =
          numeric::simd::dot(fixed_[a].data(), fixed_[bI].data(), n);
      fixed_gram_[a * kf + bI] = acc;
      fixed_gram_[bI * kf + a] = acc;
    }
    fixed_c_[a] = numeric::simd::dot(fixed_[a].data(), b.data(), n);
  }
}

StretchFit ConditionalFit::evaluate(
    std::span<const double> candidate_column) const {
  const std::size_t k = fixed_count_ + 1;
  StretchFit out;
  double s[kMaxGramUsers];
  out.residual = evaluate_into(candidate_column, s);
  out.stretches.assign(s, s + k);
  return out;
}

double ConditionalFit::evaluate_residual(
    std::span<const double> candidate_column) const {
  double s[kMaxGramUsers];
  return evaluate_into(candidate_column, s);
}

void ConditionalFit::evaluate_batch(const ColumnBlock& block,
                                    std::span<double> residuals_out,
                                    std::span<double> vary_stretch_out) const {
  if (block.rows() != obj_->sample_count() ||
      residuals_out.size() != block.cols() ||
      (!vary_stretch_out.empty() &&
       vary_stretch_out.size() != block.cols())) {
    throw std::invalid_argument("evaluate_batch: dimension mismatch");
  }
  numeric::parallel_for(0, block.cols(), [&](std::size_t c) {
    double s[kMaxGramUsers];
    residuals_out[c] = evaluate_into(block.column(c), s);
    if (!vary_stretch_out.empty()) {
      vary_stretch_out[c] = s[vary_index_];
    }
  });
}

double ConditionalFit::evaluate_into(std::span<const double> candidate_column,
                                     double* stretches) const {
  const std::size_t kf = fixed_count_;
  const std::size_t k = kf + 1;
  const std::size_t n = obj_->sample_count();
  const std::vector<double>& b = obj_->measured();

  // Cross terms of the candidate with the fixed columns, itself, and b —
  // all through the dot kernels (the measured hot path of the sweep).
  double cross[kMaxGramUsers];
  for (std::size_t a = 0; a < kf; ++a) {
    cross[a] =
        numeric::simd::dot(fixed_[a].data(), candidate_column.data(), n);
  }
  double self = 0.0;
  double cb = 0.0;
  numeric::simd::dot_self_and_b(candidate_column.data(), b.data(), n, &self,
                                &cb);

  // Assemble the K x K Gram with the candidate inserted at vary_index_.
  // Slot mapping: output index vary_index_ -> candidate; fixed column a
  // keeps its relative order around it.
  double g[kMaxGramUsers * kMaxGramUsers];
  double c[kMaxGramUsers];
  auto slot_of_fixed = [&](std::size_t a) {
    return a < vary_index_ ? a : a + 1;
  };
  for (std::size_t a = 0; a < kf; ++a) {
    const std::size_t sa = slot_of_fixed(a);
    c[sa] = fixed_c_[a];
    for (std::size_t bI = 0; bI < kf; ++bI) {
      g[sa * k + slot_of_fixed(bI)] = fixed_gram_[a * kf + bI];
    }
    g[sa * k + vary_index_] = cross[a];
    g[vary_index_ * k + sa] = cross[a];
  }
  g[vary_index_ * k + vary_index_] = self;
  c[vary_index_] = cb;

  const double b2 = obj_->measured_norm() * obj_->measured_norm();
  return nnls_from_gram_into(std::span<const double>(g, k * k), k,
                             std::span<const double>(c, k), b2, stretches);
}

}  // namespace fluxfp::core
