#include "core/flux_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fluxfp::core {

FluxModel::FluxModel(const geom::Field& field, double d_min)
    : field_(&field), d_min_(d_min) {
  if (!(d_min > 0.0)) {
    throw std::invalid_argument("FluxModel: d_min must be positive");
  }
}

double FluxModel::shape(geom::Vec2 sink, geom::Vec2 node) const {
  // A NaN/inf coordinate would flow through distance() and the boundary
  // ray into a NaN shape value, which SparseObjective folds into every fit
  // it touches without any error surfacing. Refuse it at the boundary.
  if (!std::isfinite(sink.x) || !std::isfinite(sink.y) ||
      !std::isfinite(node.x) || !std::isfinite(node.y)) {
    throw std::invalid_argument("FluxModel::shape: non-finite position");
  }
  const double d = geom::distance(sink, node);
  // Clamp the sink into the field (candidate positions may sit on the
  // boundary within rounding); boundary_distance_through handles the
  // degenerate node == sink ray internally.
  const double l = field_->boundary_distance_through(field_->clamp(sink), node);
  // l is measured from the sink through the node to the boundary, so for a
  // node inside the field l >= d; guard against clamping artifacts anyway.
  const double l2_minus_d2 = std::max(l * l - d * d, 0.0);
  return l2_minus_d2 / (2.0 * std::max(d, d_min_));
}

double FluxModel::continuous_flux(geom::Vec2 sink, geom::Vec2 node,
                                  double s) const {
  return s * shape(sink, node);
}

double FluxModel::discrete_flux(geom::Vec2 sink, geom::Vec2 node, double s,
                                double r) const {
  if (!(r > 0.0)) {
    throw std::invalid_argument("FluxModel::discrete_flux: r must be > 0");
  }
  return (s / r) * shape(sink, node);
}

}  // namespace fluxfp::core
