#include "core/flux_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/simd/kernels.hpp"

namespace fluxfp::core {

FluxModel::FluxModel(const geom::Field& field, double d_min)
    : field_(&field), d_min_(d_min) {
  if (!(d_min > 0.0)) {
    throw std::invalid_argument("FluxModel: d_min must be positive");
  }
  if (const auto* rect = dynamic_cast<const geom::RectField*>(&field)) {
    kind_ = FieldKind::kRect;
    rect_width_ = rect->width();
    rect_height_ = rect->height();
  } else if (const auto* circle =
                 dynamic_cast<const geom::CircleField*>(&field)) {
    kind_ = FieldKind::kCircle;
    circle_center_ = circle->center();
    circle_radius_ = circle->radius();
  }
}

double FluxModel::shape(geom::Vec2 sink, geom::Vec2 node) const {
  // A NaN/inf coordinate would flow through distance() and the boundary
  // ray into a NaN shape value, which SparseObjective folds into every fit
  // it touches without any error surfacing. Refuse it at the boundary.
  if (!std::isfinite(sink.x) || !std::isfinite(sink.y) ||
      !std::isfinite(node.x) || !std::isfinite(node.y)) {
    throw std::invalid_argument("FluxModel::shape: non-finite position");
  }
  const double d = geom::distance(sink, node);
  // Clamp the sink into the field (candidate positions may sit on the
  // boundary within rounding); boundary_distance_through handles the
  // degenerate node == sink ray internally.
  const double l = field_->boundary_distance_through(field_->clamp(sink), node);
  // l is measured from the sink through the node to the boundary, so for a
  // node inside the field l >= d; guard against clamping artifacts anyway.
  const double l2_minus_d2 = std::max(l * l - d * d, 0.0);
  return l2_minus_d2 / (2.0 * std::max(d, d_min_));
}

bool FluxModel::shape_row(geom::Vec2 sink, const double* qx, const double* qy,
                          std::size_t n, double* out) const {
  if (kind_ == FieldKind::kGeneric || !numeric::simd::enabled() ||
      !std::isfinite(sink.x) || !std::isfinite(sink.y)) {
    return false;
  }
  // The clamped sink and its nearest-boundary fallback come from the same
  // virtual calls the scalar path uses, so the kernels see bit-identical
  // row constants. clamp() is idempotent, so nearest_boundary_distance at
  // the already-clamped point matches boundary_distance_through's
  // clamp(origin) fallback exactly.
  const geom::Vec2 p = field_->clamp(sink);
  const double l_degenerate = field_->nearest_boundary_distance(p);
  if (kind_ == FieldKind::kRect) {
    return numeric::simd::rect_shape_row(sink.x, sink.y, p.x, p.y, rect_width_,
                                         rect_height_, d_min_, l_degenerate,
                                         qx, qy, n, out);
  }
  return numeric::simd::circle_shape_row(
      sink.x, sink.y, p.x, p.y, circle_center_.x, circle_center_.y,
      circle_radius_, d_min_, l_degenerate, qx, qy, n, out);
}

double FluxModel::continuous_flux(geom::Vec2 sink, geom::Vec2 node,
                                  double s) const {
  return s * shape(sink, node);
}

double FluxModel::discrete_flux(geom::Vec2 sink, geom::Vec2 node, double s,
                                double r) const {
  if (!(r > 0.0)) {
    throw std::invalid_argument("FluxModel::discrete_flux: r must be > 0");
  }
  return (s / r) * shape(sink, node);
}

}  // namespace fluxfp::core
