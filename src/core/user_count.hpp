#pragma once

#include <vector>

#include "core/localizer.hpp"

namespace fluxfp::core {

/// Result of user-count estimation.
struct UserCountEstimate {
  std::size_t count = 0;                ///< estimated number of mobile users
  std::vector<geom::Vec2> positions;    ///< one representative per user
  std::vector<double> stretches;        ///< merged s/r per user
};

/// Options for estimate_user_count.
struct UserCountConfig {
  /// The conservative upper bound K the fit is run with (§4.A: "we can
  /// conservatively choose a K large enough, and after the optimization
  /// the K coordinates will converge at the actual positions").
  std::size_t k_max = 6;
  /// Fitted users whose stretch is below this fraction of the largest are
  /// phantoms (their s/r converged to ~0) and are discarded.
  double stretch_floor = 0.10;
  /// Surviving positions closer than this merge into one user (several
  /// slots converging onto the same sink).
  double merge_radius = 3.0;
};

/// Estimates how many mobile users are active in a window, with their
/// positions, without knowing K in advance: run the localizer at a
/// conservative K_max, drop zero-stretch phantoms, and merge co-located
/// slots. Throws std::invalid_argument on a bad config.
UserCountEstimate estimate_user_count(const SparseObjective& objective,
                                      const InstantLocalizer& localizer,
                                      const UserCountConfig& config,
                                      geom::Rng& rng);

}  // namespace fluxfp::core
