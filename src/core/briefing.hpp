#pragma once

#include <vector>

#include "core/flux_model.hpp"
#include "net/flux.hpp"
#include "net/graph.hpp"

namespace fluxfp::core {

/// One user recovered by the briefing recursion.
struct BriefedUser {
  geom::Vec2 position;
  double stretch_over_r = 0.0;  ///< fitted integrated factor s/r
  double peak_flux = 0.0;       ///< (smoothed) flux at the detected peak
};

/// Configuration of the recursive flux briefing (§3.C).
struct BriefingConfig {
  /// Upper bound on users to extract (choose conservatively large when the
  /// true count is unknown — extraction stops at the stop_fraction anyway).
  std::size_t max_users = 8;
  /// Stop when the current peak falls below this fraction of the original
  /// map's peak (residual noise floor).
  double stop_fraction = 0.12;
  /// Smooth the map over 1-hop neighborhoods before each peak detection
  /// (§3.B recommends this to damp tree-construction randomness).
  bool smooth = true;
  /// Radius of the near-sink exclusion disc, in multiples of the model's
  /// d_min. The flux model intentionally cannot represent the traffic
  /// funnel right at the sink (§3.B's Fig. 3(b) box excludes the innermost
  /// hops), so the stretch fit ignores nodes inside this disc and the
  /// residual there is attributed to the extracted user and cleared.
  double exclusion_radius = 3.0;
};

/// Recursive briefing of a *full* network flux map: detect the global
/// traffic peak, place a user there, fit its s/r against the current map,
/// subtract its modeled flux, and repeat. Requires flux readings at every
/// node — the expensive full-information method that motivates the sparse
/// NLS approach of §4.
class FluxBriefing {
 public:
  /// `graph` and `model`'s field must outlive the briefing object.
  FluxBriefing(const net::UnitDiskGraph& graph, const FluxModel& model,
               BriefingConfig config = {});

  /// Extracts users from `flux` (size must match the graph).
  std::vector<BriefedUser> brief(const net::FluxMap& flux) const;

  /// Single round on a working map: detect + fit the dominant user and
  /// subtract its modeled flux in place (clamped at 0). Returns the user.
  BriefedUser extract_dominant(net::FluxMap& working) const;

 private:
  const net::UnitDiskGraph* graph_;
  FluxModel model_;
  BriefingConfig config_;
};

}  // namespace fluxfp::core
