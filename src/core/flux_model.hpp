#pragma once

#include <cstddef>
#include <memory>

#include "core/observation_model.hpp"
#include "geom/field.hpp"
#include "geom/vec2.hpp"

namespace fluxfp::core {

/// Concrete field geometry recognized by the vectorized shape kernels.
/// Detected once at FluxModel construction so the per-row hot path never
/// pays for a dynamic_cast.
enum class FieldKind { kGeneric, kRect, kCircle };

/// The parameterized network-flux model of §3.B.
///
/// Continuous form (Eq. 3.2): a sink at p induces, at a point q at distance
/// d = |p-q| whose boundary distance along the ray p->q is l, the flux
///     F = s * (l^2 - d^2) / (2 d).
/// Discrete form (Eq. 3.4) divides by the average hop length r:
///     F ≈ (s/r) * (l^2 - d^2) / (2 d).
///
/// The model diverges as d -> 0 (all traffic funnels through the sink's
/// immediate neighbors), so predictions clamp d at `d_min` — typically the
/// average hop length. The paper's own accuracy analysis (Fig. 3(b))
/// likewise excludes the innermost hops.
///
/// FluxModel is the reference ObservationModel backend (ModelId::kFlux):
/// site_shape/site_shape_row forward to the legacy shape/shape_row on the
/// point endpoint site.a, so the polymorphic path is bit-identical to the
/// pre-interface tree.
class FluxModel final : public ObservationModel {
 public:
  /// `d_min` > 0 is the distance clamp. The field reference must outlive
  /// the model.
  FluxModel(const geom::Field& field, double d_min);

  /// The unit-stretch "shape" phi(p, q) = (l^2 - d^2) / (2 max(d, d_min)).
  /// Multiply by s (continuous) or s/r (discrete) to get a flux amount.
  /// Always >= 0 for q inside the field, and always finite: the d_min clamp
  /// caps the d -> 0 singularity at l^2 / (2 d_min) — the value returned
  /// for a node exactly at the sink. Throws std::invalid_argument on
  /// non-finite coordinates (a NaN position must never reach the objective
  /// as a silently-NaN column).
  double shape(geom::Vec2 sink, geom::Vec2 node) const;

  /// Batch shape row: out[i] = shape(sink, {qx[i], qy[i]}) for i in [0, n),
  /// evaluated by the SIMD kernels (structure-of-arrays input). Returns
  /// false — leaving out in an unspecified state — when no vector backend
  /// is compiled in, the field is not a recognized Rect/Circle geometry,
  /// or any coordinate is non-finite; the caller must then run the scalar
  /// shape() loop on the same buffer,
  /// which preserves the exact legacy arithmetic and the throw on
  /// non-finite positions. When it returns true, every out[i] is
  /// bit-identical to shape(sink, {qx[i], qy[i]}) (element-wise lanes, no
  /// reductions — see DESIGN.md section 14).
  bool shape_row(geom::Vec2 sink, const double* qx, const double* qy,
                 std::size_t n, double* out) const;

  /// Continuous-model flux (Eq. 3.2): s * shape.
  double continuous_flux(geom::Vec2 sink, geom::Vec2 node, double s) const;

  /// Discrete-model flux (Eq. 3.4): (s/r) * shape.
  double discrete_flux(geom::Vec2 sink, geom::Vec2 node, double s,
                       double r) const;

  // ObservationModel backend: point sites, site.a is the sniffer position.
  ModelId id() const override { return ModelId::kFlux; }
  std::unique_ptr<ObservationModel> clone() const override {
    return std::make_unique<FluxModel>(*this);
  }
  const char* stretch_unit() const override {
    return "traffic rate over hop length (s/r)";
  }
  double site_shape(geom::Vec2 sink, const Site& site) const override {
    return shape(sink, site.a);
  }
  bool site_shape_row(geom::Vec2 sink, const SiteRows& sites, std::size_t n,
                      double* out) const override {
    return shape_row(sink, sites.ax, sites.ay, n, out);
  }

  const geom::Field& field() const { return *field_; }
  double d_min() const { return d_min_; }
  FieldKind field_kind() const { return kind_; }

 private:
  const geom::Field* field_;
  double d_min_;
  FieldKind kind_ = FieldKind::kGeneric;
  // Cached geometry parameters for the recognized field kinds; unused for
  // kGeneric.
  double rect_width_ = 0.0;
  double rect_height_ = 0.0;
  geom::Vec2 circle_center_{0.0, 0.0};
  double circle_radius_ = 0.0;
};

}  // namespace fluxfp::core
