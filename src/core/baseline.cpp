#include "core/baseline.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <span>
#include <stdexcept>

#include "numeric/hungarian.hpp"
#include "numeric/matrix.hpp"

namespace fluxfp::core {
namespace {

/// Reorders `fresh` so that fresh[i] is the estimate matched to anchor[i].
std::vector<geom::Vec2> match_to_anchors(const std::vector<geom::Vec2>& fresh,
                                         const std::vector<geom::Vec2>& anchor) {
  const std::size_t k = anchor.size();
  numeric::Matrix cost(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      cost(i, j) = geom::distance(anchor[i], fresh[j]);
    }
  }
  const std::vector<std::size_t> assign = numeric::hungarian_assign(cost);
  std::vector<geom::Vec2> out(k);
  for (std::size_t i = 0; i < k; ++i) {
    out[i] = fresh[assign[i]];
  }
  return out;
}

}  // namespace

InstantNlsTracker::InstantNlsTracker(const geom::Field& field,
                                     std::size_t num_users,
                                     LocalizerConfig config)
    : localizer_(field, config), num_users_(num_users) {}

std::vector<geom::Vec2> InstantNlsTracker::step(
    const SparseObjective& objective, geom::Rng& rng) {
  const LocalizationResult res =
      localizer_.localize(objective, num_users_, rng);
  if (!has_previous_) {
    estimates_ = res.positions;
    has_previous_ = true;
  } else {
    estimates_ = match_to_anchors(res.positions, estimates_);
  }
  return estimates_;
}

CentroidLocalizer::CentroidLocalizer(double gamma) : gamma_(gamma) {
  if (gamma < 0.0) {
    throw std::invalid_argument("CentroidLocalizer: negative gamma");
  }
}

geom::Vec2 CentroidLocalizer::localize(
    const SparseObjective& objective) const {
  geom::Vec2 acc;
  double wsum = 0.0;
  for (std::size_t i = 0; i < objective.sample_count(); ++i) {
    const double w = std::pow(objective.measured()[i], gamma_);
    acc += objective.sample_positions()[i] * w;
    wsum += w;
  }
  if (wsum <= 0.0) {
    throw std::logic_error("CentroidLocalizer: no traffic in the window");
  }
  return acc / wsum;
}

GridLocalizer::GridLocalizer(const geom::Field& field,
                             GridLocalizerConfig config)
    : field_(&field), config_(config) {
  if (config_.grid < 2 || config_.refinements < 0 || config_.sweeps <= 0) {
    throw std::invalid_argument("GridLocalizer: bad config");
  }
}

LocalizationResult GridLocalizer::localize(const SparseObjective& objective,
                                           std::size_t num_users) const {
  if (num_users == 0 || num_users > kMaxGramUsers) {
    throw std::invalid_argument("GridLocalizer: bad user count");
  }
  const double g = static_cast<double>(config_.grid);

  // Current combination: start every user at the field center and let the
  // first coarse sweep spread them out.
  std::vector<geom::Vec2> positions(num_users, field_->center());
  std::vector<std::vector<double>> columns(num_users);
  for (std::size_t j = 0; j < num_users; ++j) {
    objective.shape_column(positions[j], columns[j]);
  }

  // Candidate grid centered at `center` with half-extent `half` (clamped
  // into the field).
  std::vector<double> cand_col;
  auto sweep_user = [&](std::size_t j, geom::Vec2 center, double half) {
    std::array<std::span<const double>, kMaxGramUsers> fixed;
    std::size_t nf = 0;
    for (std::size_t o = 0; o < num_users; ++o) {
      if (o != j) {
        fixed[nf++] = columns[o];
      }
    }
    const ConditionalFit cond(
        objective, std::span<const std::span<const double>>(fixed.data(), nf),
        nf);
    double best = std::numeric_limits<double>::infinity();
    geom::Vec2 best_p = positions[j];
    for (std::size_t iy = 0; iy < config_.grid; ++iy) {
      for (std::size_t ix = 0; ix < config_.grid; ++ix) {
        const geom::Vec2 p = field_->clamp(
            {center.x - half + (2.0 * half) * (ix + 0.5) / g,
             center.y - half + (2.0 * half) * (iy + 0.5) / g});
        objective.shape_column(p, cand_col);
        const double r = cond.evaluate(cand_col).residual;
        if (r < best) {
          best = r;
          best_p = p;
        }
      }
    }
    positions[j] = best_p;
    objective.shape_column(best_p, columns[j]);
    return best;
  };

  double half = field_->diameter() / 2.0;
  for (int level = 0; level <= config_.refinements; ++level) {
    const int sweeps = level == 0 ? config_.sweeps : 1;
    for (int s = 0; s < sweeps; ++s) {
      for (std::size_t j = 0; j < num_users; ++j) {
        const geom::Vec2 center =
            level == 0 ? field_->center() : positions[j];
        sweep_user(j, center, half);
      }
    }
    half /= 3.0;
  }

  LocalizationResult out;
  out.positions = positions;
  StretchFit fit = objective.fit(positions);
  out.stretches = std::move(fit.stretches);
  out.residual = fit.residual;
  out.top_positions.assign(num_users, {});
  out.top_residuals.assign(num_users, {});
  for (std::size_t j = 0; j < num_users; ++j) {
    out.top_positions[j].push_back(positions[j]);
    out.top_residuals[j].push_back(out.residual);
  }
  return out;
}

EkfTracker::EkfTracker(const geom::Field& field, std::size_t num_users,
                       EkfConfig config)
    : field_(&field),
      localizer_(field, config.localizer),
      config_(config),
      states_(num_users) {}

void EkfTracker::predict_state(State& s, double dt) const {
  // x' = F x with F the constant-velocity transition.
  s.x[0] += dt * s.x[2];
  s.x[1] += dt * s.x[3];
  // P' = F P F^T + Q (white-accel Q, block-diagonal per axis).
  const double q = config_.process_noise;
  double p[16];
  std::copy(s.p, s.p + 16, p);
  auto P = [&](int r, int c) -> double& { return p[r * 4 + c]; };
  auto Pn = [&](int r, int c) -> double& { return s.p[r * 4 + c]; };
  // F P F^T computed directly for F = [[1,0,dt,0],[0,1,0,dt],[0,0,1,0],[0,0,0,1]].
  for (int axis = 0; axis < 2; ++axis) {
    const int pos = axis;       // 0 or 1
    const int vel = axis + 2;   // 2 or 3
    const double ppp = P(pos, pos);
    const double ppv = P(pos, vel);
    const double pvv = P(vel, vel);
    Pn(pos, pos) = ppp + 2.0 * dt * ppv + dt * dt * pvv +
                   q * dt * dt * dt / 3.0;
    Pn(pos, vel) = ppv + dt * pvv + q * dt * dt / 2.0;
    Pn(vel, pos) = Pn(pos, vel);
    Pn(vel, vel) = pvv + q * dt;
  }
}

void EkfTracker::update_state(State& s, geom::Vec2 obs) const {
  auto P = [&](int r, int c) -> double& { return s.p[r * 4 + c]; };
  const double r = config_.observation_noise * config_.observation_noise;
  // H = [I2 0]; innovation covariance S = H P H^T + R (2x2).
  const double s00 = P(0, 0) + r;
  const double s01 = P(0, 1);
  const double s11 = P(1, 1) + r;
  const double det = s00 * s11 - s01 * s01;
  if (det <= 0.0) {
    return;  // numerically degenerate; skip the update
  }
  const double i00 = s11 / det;
  const double i01 = -s01 / det;
  const double i11 = s00 / det;
  // Kalman gain K = P H^T S^-1 (4x2).
  double k[8];
  for (int row = 0; row < 4; ++row) {
    const double ph0 = P(row, 0);
    const double ph1 = P(row, 1);
    k[row * 2 + 0] = ph0 * i00 + ph1 * i01;
    k[row * 2 + 1] = ph0 * i01 + ph1 * i11;
  }
  const double inn0 = obs.x - s.x[0];
  const double inn1 = obs.y - s.x[1];
  for (int row = 0; row < 4; ++row) {
    s.x[row] += k[row * 2 + 0] * inn0 + k[row * 2 + 1] * inn1;
  }
  // P = (I - K H) P.
  double pnew[16];
  for (int row = 0; row < 4; ++row) {
    for (int col = 0; col < 4; ++col) {
      pnew[row * 4 + col] = P(row, col) - k[row * 2 + 0] * P(0, col) -
                            k[row * 2 + 1] * P(1, col);
    }
  }
  std::copy(pnew, pnew + 16, s.p);
}

std::vector<geom::Vec2> EkfTracker::step(const SparseObjective& objective,
                                         double dt, geom::Rng& rng) {
  const LocalizationResult res =
      localizer_.localize(objective, states_.size(), rng);

  // Predict all users forward.
  for (State& s : states_) {
    if (s.initialized) {
      predict_state(s, dt);
    }
  }

  // Match observations to predicted positions (or initialize).
  std::vector<geom::Vec2> anchors;
  anchors.reserve(states_.size());
  bool all_init = true;
  for (const State& s : states_) {
    anchors.push_back({s.x[0], s.x[1]});
    all_init = all_init && s.initialized;
  }
  std::vector<geom::Vec2> obs = res.positions;
  if (all_init) {
    obs = match_to_anchors(obs, anchors);
  }
  for (std::size_t i = 0; i < states_.size(); ++i) {
    State& s = states_[i];
    if (!s.initialized) {
      s.x[0] = obs[i].x;
      s.x[1] = obs[i].y;
      s.x[2] = s.x[3] = 0.0;
      const double r2 =
          config_.observation_noise * config_.observation_noise;
      std::fill(s.p, s.p + 16, 0.0);
      s.p[0] = s.p[5] = r2;
      const double vmax2 = field_->diameter() * field_->diameter() / 100.0;
      s.p[10] = s.p[15] = vmax2;
      s.initialized = true;
    } else {
      update_state(s, obs[i]);
    }
  }
  return estimates();
}

std::vector<geom::Vec2> EkfTracker::estimates() const {
  std::vector<geom::Vec2> out;
  out.reserve(states_.size());
  for (const State& s : states_) {
    out.push_back(field_->clamp({s.x[0], s.x[1]}));
  }
  return out;
}

}  // namespace fluxfp::core
