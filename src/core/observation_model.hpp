#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "geom/vec2.hpp"

namespace fluxfp::core {

/// Stable numeric tags of the observation-model backends. These values are
/// serialized (FLUXFPT1 model-id header byte, FXN1 HELLO model byte), so
/// they are append-only: never renumber, never reuse.
enum class ModelId : std::uint8_t {
  kFlux = 0,          ///< network-flux fingerprint (the paper's model)
  kRssLink = 1,       ///< RSS link-crossing attenuation (Patwari & Wilson)
  kPassiveTrace = 2,  ///< passive binary detections (Marculescu et al.)
};

/// "flux", "rss-link", "passive-trace", or "unknown".
const char* model_name(ModelId id);

/// True for ids this build can deserialize (trace/netio validation).
bool known_model_id(std::uint8_t raw);

/// Where one observation physically lives. Point models (flux magnitudes,
/// passive detections) observe at a single sniffer position (`b == a` by
/// convention); link models (RSS attenuation) observe on a sniffer *pair*,
/// with `a` and `b` the two endpoints of the link.
struct Site {
  geom::Vec2 a;
  geom::Vec2 b;
};

/// Point-site convenience: both endpoints at `p`.
inline Site point_site(geom::Vec2 p) { return Site{p, p}; }

/// Structure-of-arrays view of a compacted site list — the contiguous
/// coordinate rows the SIMD shape kernels consume. For point-site
/// objectives `bx`/`by` alias `ax`/`ay`; they are never null.
struct SiteRows {
  const double* ax = nullptr;
  const double* ay = nullptr;
  const double* bx = nullptr;
  const double* by = nullptr;
};

/// One physics backend of the estimation machinery: how a user (sink) at
/// position p shows up in the reading observed at a site.
///
/// Contract (DESIGN.md section 16):
///  * Predicted readings are LINEAR in one non-negative per-user factor
///    ("stretch"): reading_i = sum_j s_j * site_shape(p_j, site_i). The
///    NLS objective profiles the stretches out through the same NNLS
///    machinery for every backend; stretch_unit() names what one unit of
///    fitted s means under this model's physics.
///  * site_shape() is finite and >= 0 for finite inputs, and throws
///    std::invalid_argument on any non-finite coordinate — a NaN position
///    must never reach the objective as a silently-NaN column. Each
///    model's likelihood denominator is clamped away from zero at
///    construction-validated parameters (the flux d_min pattern).
///  * Missing-reading semantics are uniform across backends and live
///    ABOVE the model: a reading equal to net::kMissingReading is no
///    evidence at all, and SparseObjective compacts it away before any
///    shape is evaluated. Models only ever see live sites.
///  * site_shape_row() is the batch form over SoA coordinate rows,
///    dispatched once per column so the SIMD hot path keeps its layout.
///    When it returns true every out[i] is bit-identical to
///    site_shape(sink, site_i) (element-wise lanes, same operation
///    sequence — DESIGN.md section 14); when it returns false (scalar
///    backend, unrecognized geometry, non-finite input) out[] is
///    unspecified and the caller must run the scalar site_shape() loop,
///    which preserves the throw-on-non-finite behavior.
class ObservationModel {
 public:
  virtual ~ObservationModel() = default;

  virtual ModelId id() const = 0;
  /// Deep copy with value semantics (objectives own an immutable copy).
  virtual std::unique_ptr<ObservationModel> clone() const = 0;
  /// True when observations live on sniffer pairs (site.b meaningful).
  virtual bool sites_are_links() const { return false; }
  /// What one unit of profiled stretch means (report labels).
  virtual const char* stretch_unit() const = 0;

  /// Scalar shape phi(sink, site) — see the class contract.
  virtual double site_shape(geom::Vec2 sink, const Site& site) const = 0;

  /// Batch shape row over n sites; see the class contract. The default
  /// declines, which keeps scalar-only backends trivially correct.
  virtual bool site_shape_row(geom::Vec2 sink, const SiteRows& sites,
                              std::size_t n, double* out) const {
    (void)sink;
    (void)sites;
    (void)n;
    (void)out;
    return false;
  }
};

}  // namespace fluxfp::core
