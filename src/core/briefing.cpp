#include "core/briefing.hpp"

#include <algorithm>
#include <stdexcept>

#include "numeric/nnls.hpp"

namespace fluxfp::core {

FluxBriefing::FluxBriefing(const net::UnitDiskGraph& graph,
                           const FluxModel& model, BriefingConfig config)
    : graph_(&graph), model_(model), config_(config) {
  if (config_.max_users == 0 || config_.stop_fraction < 0.0 ||
      config_.exclusion_radius < 0.0) {
    throw std::invalid_argument("FluxBriefing: bad config");
  }
}

BriefedUser FluxBriefing::extract_dominant(net::FluxMap& working) const {
  const net::FluxMap& peak_map =
      config_.smooth ? net::smooth_flux(*graph_, working) : working;
  const auto peak_it = std::max_element(peak_map.begin(), peak_map.end());
  const auto peak_idx =
      static_cast<std::size_t>(peak_it - peak_map.begin());

  BriefedUser user;
  user.peak_flux = *peak_it;
  // Refine the peak position as the flux-weighted centroid of the peak's
  // 1-hop neighborhood — the traffic concentration point of §3.C.
  geom::Vec2 centroid = graph_->position(peak_idx) * peak_map[peak_idx];
  double weight = peak_map[peak_idx];
  for (std::size_t nb : graph_->neighbors(peak_idx)) {
    centroid += graph_->position(nb) * peak_map[nb];
    weight += peak_map[nb];
  }
  user.position =
      weight > 0.0 ? centroid / weight : graph_->position(peak_idx);

  // Fit s/r for this user against the *current* working map. Nodes inside
  // the near-sink exclusion disc are left out of the fit: the model cannot
  // represent the traffic funnel at the sink itself (cf. Fig. 3(b)).
  const double excl = config_.exclusion_radius * model_.d_min();
  std::vector<double> shape(graph_->size());
  std::vector<double> fit_shape;
  std::vector<double> fit_measured;
  for (std::size_t i = 0; i < graph_->size(); ++i) {
    shape[i] = model_.shape(user.position, graph_->position(i));
    if (geom::distance(user.position, graph_->position(i)) >= excl) {
      fit_shape.push_back(shape[i]);
      fit_measured.push_back(working[i]);
    }
  }
  user.stretch_over_r = fit_shape.empty()
                            ? numeric::nnls_single(shape, working)
                            : numeric::nnls_single(fit_shape, fit_measured);
  // Subtract the modeled flux; residual inside the exclusion disc belongs
  // to the extracted user, so clear it outright.
  for (std::size_t i = 0; i < graph_->size(); ++i) {
    if (geom::distance(user.position, graph_->position(i)) < excl) {
      working[i] = 0.0;
    } else {
      working[i] = std::max(0.0, working[i] - user.stretch_over_r * shape[i]);
    }
  }
  return user;
}

std::vector<BriefedUser> FluxBriefing::brief(const net::FluxMap& flux) const {
  if (flux.size() != graph_->size()) {
    throw std::invalid_argument("FluxBriefing::brief: size mismatch");
  }
  net::FluxMap working = flux;
  const double original_peak =
      working.empty() ? 0.0 : *std::max_element(working.begin(), working.end());
  std::vector<BriefedUser> users;
  if (original_peak <= 0.0) {
    return users;
  }
  for (std::size_t round = 0; round < config_.max_users; ++round) {
    const double current_peak =
        *std::max_element(working.begin(), working.end());
    if (current_peak < config_.stop_fraction * original_peak) {
      break;
    }
    users.push_back(extract_dominant(working));
  }
  return users;
}

}  // namespace fluxfp::core
