#include "core/adversary.hpp"

#include <stdexcept>

#include "core/nls.hpp"
#include "net/routing.hpp"
#include "sim/sniffer.hpp"

namespace fluxfp::core {
namespace {

/// d_min calibration: half the average hop length of one probe tree (see
/// eval::estimate_d_min for the rationale; duplicated here to keep the
/// core library independent of the eval helpers).
double calibrate_d_min(const net::UnitDiskGraph& graph,
                       const geom::Field& field, geom::Rng& rng) {
  const net::CollectionTree probe =
      net::build_collection_tree(graph, field.center(), rng);
  const double r = net::average_hop_length(graph, probe);
  return r > 0.0 ? 0.5 * r : graph.radius() / 4.0;
}

}  // namespace

Adversary::Adversary(const geom::Field& field,
                     const net::UnitDiskGraph& graph, AdversaryConfig config,
                     geom::Rng& rng)
    : field_(&field),
      graph_(&graph),
      config_(config),
      sniffed_(sim::sample_nodes_fraction(graph.size(),
                                          config.sniff_fraction, rng)),
      model_(field, calibrate_d_min(graph, field, rng)),
      tracker_(field, config.num_users, config.tracker, rng) {}

SmcStepResult Adversary::observe(double time, const net::FluxMap& flux,
                                 geom::Rng& rng) {
  if (flux.size() != graph_->size()) {
    throw std::invalid_argument("Adversary::observe: flux size mismatch");
  }
  const net::FluxMap& readings =
      config_.smooth ? net::smooth_flux(*graph_, flux) : flux;
  std::vector<geom::Vec2> positions;
  positions.reserve(sniffed_.size());
  for (std::size_t i : sniffed_) {
    positions.push_back(graph_->position(i));
  }
  const SparseObjective objective(model_, std::move(positions),
                                  sim::gather(readings, sniffed_));
  return tracker_.step(time, objective, rng);
}

}  // namespace fluxfp::core
