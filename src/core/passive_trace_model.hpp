#pragma once

#include "core/observation_model.hpp"

namespace fluxfp::core {

/// Passive binary detection traces (Marculescu et al., PAPERS.md): a
/// sniffer reports 1 when it overhears the user's transmissions during an
/// epoch, 0 otherwise. The detection probability falls off with distance
/// inside a radius R as the truncated quadratic (Epanechnikov) kernel
///
///   phi(p, {a}) = max(0, 1 - |pa|^2 / R^2)
///
/// and the profiled stretch is the per-user detection rate at zero range
/// (transmission activity x at-range detection probability), so the
/// linear predicted reading s * phi is the Bernoulli success probability
/// of the epoch's detection bit. Least squares on the 0/1 readings is the
/// Gaussian working approximation of that Bernoulli likelihood — exactly
/// the moment-matching used for flux counts, so the NNLS machinery
/// applies unchanged. Sites are points (b == a).
///
/// Denominator guard (the flux d_min pattern): R -> 0 would make 1/R^2
/// non-finite, so a non-positive or non-finite radius is rejected at
/// construction.
class PassiveTraceModel final : public ObservationModel {
 public:
  /// Throws std::invalid_argument unless the radius is finite and positive.
  explicit PassiveTraceModel(double detection_radius);

  ModelId id() const override { return ModelId::kPassiveTrace; }
  std::unique_ptr<ObservationModel> clone() const override {
    return std::make_unique<PassiveTraceModel>(*this);
  }
  const char* stretch_unit() const override {
    return "detection rate at zero range";
  }

  double site_shape(geom::Vec2 sink, const Site& site) const override;
  bool site_shape_row(geom::Vec2 sink, const SiteRows& sites, std::size_t n,
                      double* out) const override;

  double detection_radius() const { return radius_; }

 private:
  double radius_ = 0.0;
  double inv_r2_ = 0.0;
};

}  // namespace fluxfp::core
