#include "core/user_count.hpp"

#include <algorithm>
#include <stdexcept>

namespace fluxfp::core {

UserCountEstimate estimate_user_count(const SparseObjective& objective,
                                      const InstantLocalizer& localizer,
                                      const UserCountConfig& config,
                                      geom::Rng& rng) {
  if (config.k_max == 0 || config.k_max > kMaxGramUsers ||
      config.stretch_floor < 0.0 || config.stretch_floor >= 1.0 ||
      config.merge_radius < 0.0) {
    throw std::invalid_argument("estimate_user_count: bad config");
  }

  const LocalizationResult fit =
      localizer.localize(objective, config.k_max, rng);

  // Drop phantoms: slots whose fitted s/r collapsed toward zero.
  double max_stretch = 0.0;
  for (double s : fit.stretches) {
    max_stretch = std::max(max_stretch, s);
  }
  struct Slot {
    geom::Vec2 position;
    double stretch;
  };
  std::vector<Slot> survivors;
  for (std::size_t j = 0; j < fit.positions.size(); ++j) {
    if (max_stretch > 0.0 &&
        fit.stretches[j] > config.stretch_floor * max_stretch) {
      survivors.push_back({fit.positions[j], fit.stretches[j]});
    }
  }

  // Greedy merge of co-located survivors (stretch-weighted centroids).
  UserCountEstimate out;
  std::vector<bool> used(survivors.size(), false);
  // Heaviest first, so cluster centers anchor on dominant users.
  std::sort(survivors.begin(), survivors.end(),
            [](const Slot& a, const Slot& b) { return a.stretch > b.stretch; });
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    if (used[i]) {
      continue;
    }
    geom::Vec2 centroid = survivors[i].position * survivors[i].stretch;
    double weight = survivors[i].stretch;
    used[i] = true;
    for (std::size_t j = i + 1; j < survivors.size(); ++j) {
      if (!used[j] && geom::distance(survivors[i].position,
                                     survivors[j].position) <=
                          config.merge_radius) {
        centroid += survivors[j].position * survivors[j].stretch;
        weight += survivors[j].stretch;
        used[j] = true;
      }
    }
    out.positions.push_back(centroid / weight);
    out.stretches.push_back(weight);
  }
  out.count = out.positions.size();
  return out;
}

}  // namespace fluxfp::core
