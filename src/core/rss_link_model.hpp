#pragma once

#include "core/observation_model.hpp"

namespace fluxfp::core {

/// RSS link-crossing attenuation (Patwari & Wilson, PAPERS.md): a user at
/// p shadows the radio link a--b when p lies inside the thin ellipse with
/// foci a and b, and the induced RSS drop scales as 1/sqrt(|ab|). The
/// shape is the ellipse gate times that link-length weight:
///
///   phi(p, {a,b}) = max(0, 1 - (|pa| + |pb| - |ab|) / lambda)
///                   / sqrt(max(|ab|, min_link))
///
/// lambda is the excess-path width of the sensitivity ellipse (meters);
/// the profiled stretch is the per-user attenuation gain in dB at the
/// ellipse axis. Observations live on sniffer PAIRS: sites_are_links() is
/// true and both Site endpoints are meaningful (net::enumerate_links +
/// net::gather_link_readings produce them).
///
/// Denominator guard (the flux d_min pattern): |ab| -> 0 for a degenerate
/// self-link would blow up the 1/sqrt weight, so the denominator is
/// clamped at min_link, validated positive at construction.
class RssLinkModel final : public ObservationModel {
 public:
  /// Throws std::invalid_argument unless both parameters are finite and
  /// positive.
  RssLinkModel(double lambda, double min_link_length);

  ModelId id() const override { return ModelId::kRssLink; }
  std::unique_ptr<ObservationModel> clone() const override {
    return std::make_unique<RssLinkModel>(*this);
  }
  bool sites_are_links() const override { return true; }
  const char* stretch_unit() const override {
    return "link attenuation gain (dB)";
  }

  double site_shape(geom::Vec2 sink, const Site& site) const override;
  bool site_shape_row(geom::Vec2 sink, const SiteRows& sites, std::size_t n,
                      double* out) const override;

  double lambda() const { return lambda_; }
  double min_link_length() const { return min_link_; }

 private:
  double lambda_ = 0.0;
  double inv_lambda_ = 0.0;
  double min_link_ = 0.0;
};

}  // namespace fluxfp::core
