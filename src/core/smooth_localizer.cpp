#include "core/smooth_localizer.hpp"

#include <cmath>
#include <limits>
#include <span>
#include <stdexcept>

#include "numeric/arena.hpp"
#include "numeric/parallel.hpp"

namespace fluxfp::core {

SmoothLocalizer::SmoothLocalizer(const geom::Field& field,
                                 SmoothLocalizerConfig config)
    : field_(&field), config_(config) {
  if (config_.restarts <= 0) {
    throw std::invalid_argument("SmoothLocalizer: restarts must be > 0");
  }
}

namespace {

/// One LM/GN multi-restart pass against `objective`.
SmoothLocalizationResult smooth_search(const geom::Field& field,
                                       const SmoothLocalizerConfig& config,
                                       const SparseObjective& objective,
                                       std::size_t num_users, geom::Rng& rng);

}  // namespace

SmoothLocalizationResult SmoothLocalizer::localize(
    const SparseObjective& objective, std::size_t num_users,
    geom::Rng& rng) const {
  if (num_users == 0 || num_users > kMaxGramUsers) {
    throw std::invalid_argument("SmoothLocalizer: bad user count");
  }
  SmoothLocalizationResult result =
      smooth_search(*field_, config_, objective, num_users, rng);
  if (config_.robust.loss == RobustLoss::kNone ||
      objective.sample_count() == 0) {
    return result;
  }
  for (int round = 0; round < config_.robust.reweight_rounds; ++round) {
    const std::vector<double> r =
        objective.residuals_at(result.positions, result.stretches);
    const SparseObjective weighted =
        objective.reweighted(robust_weights(r, config_.robust));
    result = smooth_search(*field_, config_, weighted, num_users, rng);
  }
  StretchFit plain = objective.fit(result.positions);
  result.stretches = std::move(plain.stretches);
  result.residual = plain.residual;
  return result;
}

namespace {

SmoothLocalizationResult smooth_search(const geom::Field& field,
                                       const SmoothLocalizerConfig& config,
                                       const SparseObjective& objective,
                                       std::size_t num_users, geom::Rng& rng) {
  const geom::Field* field_ = &field;
  const SmoothLocalizerConfig& config_ = config;
  const std::size_t n = objective.sample_count();

  // Variable-projection residual: theta = [x1 y1 ... xK yK]; the stretch
  // factors are profiled out by the exact NNLS at every evaluation, so the
  // residual vector is F(theta, s*(theta)) - F'.
  const auto residual_fn =
      [&](const std::vector<double>& theta) -> std::vector<double> {
    // Per-worker arena, reset every evaluation: LM calls this inside its
    // iteration loop, so the sink/column scratch here used to dominate the
    // allocator traffic of a smooth localization.
    thread_local numeric::Arena arena;
    arena.reset();
    const std::span<geom::Vec2> sinks = arena.alloc<geom::Vec2>(num_users);
    for (std::size_t j = 0; j < num_users; ++j) {
      sinks[j] = field_->clamp({theta[2 * j], theta[2 * j + 1]});
    }
    const std::span<double> col_storage = arena.alloc<double>(num_users * n);
    const std::span<std::span<const double>> cols =
        arena.alloc<std::span<const double>>(num_users);
    for (std::size_t j = 0; j < num_users; ++j) {
      const std::span<double> col = col_storage.subspan(j * n, n);
      objective.shape_column(sinks[j], col);
      cols[j] = col;
    }
    const StretchFit fit = objective.fit_columns(cols);
    std::vector<double> r(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      double predicted = 0.0;
      for (std::size_t j = 0; j < num_users; ++j) {
        predicted += fit.stretches[j] * cols[j][i];
      }
      r[i] = predicted - objective.measured()[i];
    }
    return r;
  };

  // Pre-draw every restart's initial theta on the calling thread, in the
  // order the serial loop consumed the RNG stream; the LM/GN iterations
  // themselves are deterministic, so the restarts can then fan out over
  // the thread pool without changing any result bit.
  const std::size_t restarts = static_cast<std::size_t>(config_.restarts);
  std::vector<std::vector<double>> thetas(restarts);
  for (std::vector<double>& theta : thetas) {
    theta.reserve(2 * num_users);
    for (std::size_t j = 0; j < num_users; ++j) {
      const geom::Vec2 p = geom::uniform_in_field(*field_, rng);
      theta.push_back(p.x);
      theta.push_back(p.y);
    }
  }

  std::vector<numeric::LmResult> runs(restarts);
  numeric::parallel_for(0, restarts, [&](std::size_t restart) {
    runs[restart] =
        config_.use_gauss_newton
            ? numeric::gauss_newton(residual_fn, std::move(thetas[restart]))
            : numeric::levenberg_marquardt(residual_fn,
                                           std::move(thetas[restart]),
                                           config_.lm);
  });

  // Winner selection stays serial and in restart order (strict <, so ties
  // keep resolving to the earliest restart, as in the serial loop).
  SmoothLocalizationResult best;
  best.residual = std::numeric_limits<double>::infinity();
  for (const numeric::LmResult& run : runs) {
    const double res_norm = std::sqrt(2.0 * run.cost);
    if (res_norm < best.residual) {
      best.residual = res_norm;
      best.converged = run.converged;
      best.positions.clear();
      for (std::size_t j = 0; j < num_users; ++j) {
        best.positions.push_back(
            field_->clamp({run.params[2 * j], run.params[2 * j + 1]}));
      }
      best.stretches = objective.fit(best.positions).stretches;
    }
  }
  return best;
}

}  // namespace

}  // namespace fluxfp::core
