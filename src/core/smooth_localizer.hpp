#pragma once

#include <vector>

#include "core/nls.hpp"
#include "geom/sampling.hpp"
#include "numeric/lm.hpp"

namespace fluxfp::core {

/// Configuration of the derivative-based localizer.
struct SmoothLocalizerConfig {
  /// Independent random restarts; the lowest-residual run wins.
  int restarts = 8;
  /// Inner Levenberg–Marquardt options.
  numeric::LmOptions lm;
  /// Use undamped Gauss–Newton instead of LM (ablation; diverges more).
  bool use_gauss_newton = false;
  /// Optional robust refit (see LocalizerConfig::robust): IRLS reweighting
  /// of the samples after the plain LM runs.
  RobustFitConfig robust;
};

/// Result of a smooth localization run.
struct SmoothLocalizationResult {
  std::vector<geom::Vec2> positions;  ///< best positions (clamped to field)
  std::vector<double> stretches;      ///< profiled s_j/r at the optimum
  double residual = 0.0;              ///< ||F - F'|| at the optimum
  bool converged = false;             ///< did the winning run converge
};

/// The classical numerical approach the paper rules out for rectangular
/// fields (§4.A): treat user coordinates as continuous parameters and run
/// Levenberg–Marquardt on the NLS objective, profiling the stretch factors
/// out by NNLS at every evaluation (variable projection).
///
/// On a CircleField the boundary-distance term l(·) is smooth and this
/// converges quickly near the optimum; on a RectField the objective is
/// only piecewise smooth, and LM stalls on the kinks — which is exactly
/// why the paper uses sampling-based fitting instead. Both behaviours are
/// measured in the ablation bench.
class SmoothLocalizer {
 public:
  /// `field` must outlive the localizer.
  explicit SmoothLocalizer(const geom::Field& field,
                           SmoothLocalizerConfig config = {});

  /// Localizes `num_users` sinks. Throws std::invalid_argument for
  /// num_users == 0 or > kMaxGramUsers.
  SmoothLocalizationResult localize(const SparseObjective& objective,
                                    std::size_t num_users,
                                    geom::Rng& rng) const;

  const SmoothLocalizerConfig& config() const { return config_; }

 private:
  const geom::Field* field_;
  SmoothLocalizerConfig config_;
};

}  // namespace fluxfp::core
