#include "core/rss_link_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/simd/kernels.hpp"

namespace fluxfp::core {

RssLinkModel::RssLinkModel(double lambda, double min_link_length)
    : lambda_(lambda), min_link_(min_link_length) {
  if (!std::isfinite(lambda) || !(lambda > 0.0)) {
    throw std::invalid_argument("RssLinkModel: lambda must be positive");
  }
  if (!std::isfinite(min_link_length) || !(min_link_length > 0.0)) {
    throw std::invalid_argument(
        "RssLinkModel: min_link_length must be positive");
  }
  inv_lambda_ = 1.0 / lambda;
}

double RssLinkModel::site_shape(geom::Vec2 sink, const Site& site) const {
  // Same boundary rule as FluxModel::shape: a NaN/inf coordinate would
  // turn into a silently-NaN column, so refuse it here.
  if (!std::isfinite(sink.x) || !std::isfinite(sink.y) ||
      !std::isfinite(site.a.x) || !std::isfinite(site.a.y) ||
      !std::isfinite(site.b.x) || !std::isfinite(site.b.y)) {
    throw std::invalid_argument(
        "RssLinkModel::site_shape: non-finite position");
  }
  const double dax = sink.x - site.a.x;
  const double day = sink.y - site.a.y;
  const double da = std::sqrt(dax * dax + day * day);
  const double dbx = sink.x - site.b.x;
  const double dby = sink.y - site.b.y;
  const double db = std::sqrt(dbx * dbx + dby * dby);
  const double abx = site.a.x - site.b.x;
  const double aby = site.a.y - site.b.y;
  const double dab = std::sqrt(abx * abx + aby * aby);
  const double excess = (da + db - dab) * inv_lambda_;
  const double gate = std::max(1.0 - excess, 0.0);
  return gate / std::sqrt(std::max(dab, min_link_));
}

bool RssLinkModel::site_shape_row(geom::Vec2 sink, const SiteRows& sites,
                                  std::size_t n, double* out) const {
  if (!numeric::simd::enabled() || !std::isfinite(sink.x) ||
      !std::isfinite(sink.y)) {
    return false;
  }
  return numeric::simd::rss_link_shape_row(sink.x, sink.y, inv_lambda_,
                                           min_link_, sites.ax, sites.ay,
                                           sites.bx, sites.by, n, out);
}

}  // namespace fluxfp::core
