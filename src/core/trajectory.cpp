#include "core/trajectory.hpp"

#include <limits>
#include <stdexcept>

namespace fluxfp::core {

std::vector<geom::Vec2> smooth_trajectory(
    const std::vector<RoundCandidates>& rounds,
    const TrajectoryConfig& config) {
  if (rounds.empty()) {
    throw std::invalid_argument("smooth_trajectory: no rounds");
  }
  if (!(config.vmax > 0.0) || config.motion_weight < 0.0 ||
      config.emission_weight < 0.0) {
    throw std::invalid_argument("smooth_trajectory: bad config");
  }
  for (std::size_t t = 0; t < rounds.size(); ++t) {
    if (rounds[t].positions.empty() ||
        rounds[t].positions.size() != rounds[t].residuals.size()) {
      throw std::invalid_argument(
          "smooth_trajectory: empty or mismatched candidate round");
    }
    if (t > 0 && !(rounds[t].time > rounds[t - 1].time)) {
      throw std::invalid_argument(
          "smooth_trajectory: times must be increasing");
    }
  }

  // Hard-ish speed bound: infeasible steps cost this much per unit of
  // excess so that some path always exists but violations lose to any
  // feasible alternative.
  constexpr double kInfeasiblePenalty = 1e9;

  const std::size_t r = rounds.size();
  // cost[i] = best cost of a path ending at candidate i of the current
  // round; from[t][i] = argmin predecessor for backtracking.
  std::vector<double> cost(rounds[0].positions.size());
  for (std::size_t i = 0; i < cost.size(); ++i) {
    cost[i] = config.emission_weight * rounds[0].residuals[i];
  }
  std::vector<std::vector<std::size_t>> from(r);

  for (std::size_t t = 1; t < r; ++t) {
    const double dt = rounds[t].time - rounds[t - 1].time;
    const double reach = config.vmax * dt;
    const std::size_t m = rounds[t].positions.size();
    std::vector<double> next(m, std::numeric_limits<double>::infinity());
    from[t].assign(m, 0);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < cost.size(); ++j) {
        const double step = geom::distance(rounds[t].positions[i],
                                           rounds[t - 1].positions[j]);
        const double normalized = step / reach;
        double trans = config.motion_weight * normalized * normalized;
        if (step > reach) {
          trans += kInfeasiblePenalty * (step - reach);
        }
        const double total = cost[j] + trans;
        if (total < next[i]) {
          next[i] = total;
          from[t][i] = j;
        }
      }
      next[i] += config.emission_weight * rounds[t].residuals[i];
    }
    cost = std::move(next);
  }

  // Backtrack from the best terminal candidate.
  std::size_t best = 0;
  for (std::size_t i = 1; i < cost.size(); ++i) {
    if (cost[i] < cost[best]) {
      best = i;
    }
  }
  std::vector<geom::Vec2> path(r);
  std::size_t cur = best;
  for (std::size_t t = r; t-- > 0;) {
    path[t] = rounds[t].positions[cur];
    if (t > 0) {
      cur = from[t][cur];
    }
  }
  return path;
}

}  // namespace fluxfp::core
