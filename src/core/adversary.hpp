#pragma once

#include <vector>

#include "core/flux_model.hpp"
#include "core/smc.hpp"
#include "net/flux.hpp"
#include "net/graph.hpp"

namespace fluxfp::core {

/// Configuration of the high-level adversary facade.
struct AdversaryConfig {
  /// Fraction of nodes passively sniffed (the paper's robust operating
  /// point is 0.10).
  double sniff_fraction = 0.10;
  /// Number of mobile users tracked (choose conservatively large when
  /// unknown; phantom slots fit s/r ~ 0 and never update).
  std::size_t num_users = 1;
  /// Tracker parameters (Algorithm 4.1).
  SmcConfig tracker;
  /// Apply §3.B neighborhood smoothing to the sniffed readings (a sniffer
  /// physically overhears its whole radio neighborhood).
  bool smooth = true;
};

/// Everything the paper's adversary does, behind one object: pick the
/// sniffed nodes, calibrate the flux model's d_min from the observed
/// topology, and run the Sequential Monte Carlo tracker over the windowed
/// flux observations.
///
///   core::Adversary adversary(field, graph, {}, rng);
///   for (each window) adversary.observe(t, window_flux, rng);
///   adversary.estimate(0);  // where user 0 is
class Adversary {
 public:
  /// Samples the sniffed node set and calibrates d_min (one probe tree).
  /// `field` and `graph` must outlive the adversary. Throws
  /// std::invalid_argument on a bad config.
  Adversary(const geom::Field& field, const net::UnitDiskGraph& graph,
            AdversaryConfig config, geom::Rng& rng);

  /// Consumes one observation window ending at `time`: reads the sniffed
  /// nodes out of `flux` (a full per-node map; only the sniffed entries
  /// are used — the adversary never sees the rest) and advances the
  /// tracker.
  SmcStepResult observe(double time, const net::FluxMap& flux,
                        geom::Rng& rng);

  /// Current position estimate for `user`.
  geom::Vec2 estimate(std::size_t user) const {
    return tracker_.estimate(user);
  }

  const std::vector<std::size_t>& sniffed_nodes() const { return sniffed_; }
  const FluxModel& model() const { return model_; }
  const SmcTracker& tracker() const { return tracker_; }
  std::size_t num_users() const { return tracker_.num_users(); }

 private:
  const geom::Field* field_;
  const net::UnitDiskGraph* graph_;
  AdversaryConfig config_;
  std::vector<std::size_t> sniffed_;
  FluxModel model_;
  SmcTracker tracker_;
};

}  // namespace fluxfp::core
