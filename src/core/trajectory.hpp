#pragma once

#include <vector>

#include "geom/vec2.hpp"

namespace fluxfp::core {

/// One observation round's candidate set for a single user: the top-M
/// positions the NLS search kept, with their objective values (exactly
/// what InstantLocalizer/SmcTracker produce per round).
struct RoundCandidates {
  double time = 0.0;
  std::vector<geom::Vec2> positions;
  std::vector<double> residuals;  ///< ||F - F'|| per candidate
};

/// Options for the offline trajectory smoother.
struct TrajectoryConfig {
  /// Maximum speed; transitions longer than vmax * Δt are infeasible.
  double vmax = 5.0;
  /// Soft penalty per unit of squared normalized step length (favors
  /// smooth paths among feasible ones).
  double motion_weight = 1.0;
  /// Weight of the per-round objective values against the motion terms.
  double emission_weight = 1.0;
};

/// Offline trajectory recovery by dynamic programming: given each round's
/// top-M candidate positions and objective values, find the single
/// time-consistent path minimizing
///   Σ_t emission_weight * residual_t(i_t)
///   + Σ_t motion_weight * (|p_{i_t} - p_{i_{t-1}}| / (vmax Δt))^2
/// subject to the per-step speed bound (violations incur a large but
/// finite penalty so a path always exists).
///
/// This is the batch counterpart of the online SMC tracker — the classic
/// constrained-NLS smoothing the related work (§2) applies to remote
/// tracking: with all rounds in hand, an early outlier that the online
/// filter had to commit to is repaired by the consistency of the rest of
/// the trajectory. Throws std::invalid_argument on empty input, empty
/// rounds, mismatched sizes, non-increasing times, or a bad config.
std::vector<geom::Vec2> smooth_trajectory(
    const std::vector<RoundCandidates>& rounds,
    const TrajectoryConfig& config = {});

}  // namespace fluxfp::core
