#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geom/vec2.hpp"
#include "stream/event.hpp"
#include "stream/trace_io.hpp"

namespace fluxfp::netio {

/// The tracking service's wire protocol, version 1. A connection is a
/// sequence of length-prefixed frames in both directions; every frame
/// carries a fixed 12-byte header
///   bytes 0..3   magic "FXN1"
///   bytes 4..5   u16 frame type (FrameType)
///   bytes 6..7   u16 reserved (0)
///   bytes 8..11  u32 payload byte count (bounds-checked against WireLimits)
/// followed by `payload` bytes whose layout depends on the type. Like
/// FLUXFPT1/FLUXFPC1, all integer and f64 fields are raw host-endian bytes
/// (memcpy) — this is a loopback/cluster protocol, and readings round-trip
/// BIT-exactly including the NaN payload of net::kMissingReading. An
/// EVENT_BATCH payload is literally a run of FLUXFPT1 28-byte records
/// (stream::encode_trace_record), so a recorded trace can be cut into
/// frames and a wire capture can be replayed as a trace.
///
/// Versioning/compat rules (DESIGN.md §15): the magic and header layout are
/// frozen forever; kWireVersion is carried in HELLO, and a server that does
/// not speak the client's version answers ERROR{kUnsupportedVersion} with
/// its own version in the message, then closes. New frame types may be
/// added in later versions; within version 1 an unknown type is a protocol
/// error, never silently skipped.
inline constexpr char kFrameMagic[4] = {'F', 'X', 'N', '1'};
inline constexpr std::uint32_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 12;
/// One event on the wire = one FLUXFPT1 record.
inline constexpr std::size_t kEventRecordBytes = stream::kTraceRecordBytes;

enum class FrameType : std::uint16_t {
  kHello = 1,          ///< client→server: version, tenant, auth token
  kWelcome = 2,        ///< server→client: accepted; tenant session count
  kEventBatch = 3,     ///< client→server: N FLUXFPT1 records
  kBatchAck = 4,       ///< server→client: admission outcome tallies
  kQueryEstimate = 5,  ///< client→server: one user id
  kEstimate = 6,       ///< server→client: quiesced per-slot estimates
  kSnapshotRequest = 7,  ///< client→server: empty
  kSnapshotImage = 8,    ///< server→client: newest committed FLUXFPC1 image
  kMetricsRequest = 9,   ///< client→server: empty
  kMetricsReport = 10,   ///< server→client: MetricsMsg
  kGoodbye = 11,         ///< client→server: clean close request
  kGoodbyeOk = 12,       ///< server→client: acknowledged, closing
  kError = 13,           ///< server→client: typed reason, then close
};

/// True for every type this build speaks (version 1's full catalog).
bool known_frame_type(std::uint16_t raw);
const char* frame_type_name(FrameType type);

/// Typed reason codes carried by ERROR frames. Stable numeric values:
/// clients match on the code, the message text is for humans.
enum class ErrorCode : std::uint32_t {
  kMalformedFrame = 1,      ///< framing/payload failed a bounds check
  kUnsupportedVersion = 2,  ///< HELLO version this server does not speak
  kAuthFailed = 3,          ///< unknown tenant or wrong token
  kNotAuthenticated = 4,    ///< first frame was not HELLO
  kUnavailable = 5,         ///< shard down (crash-restore in progress)
  kUnknownUser = 6,         ///< QUERY_ESTIMATE for an unregistered session
  kServiceClosing = 7,      ///< server is draining; retry elsewhere
  kInternal = 8,            ///< server-side failure, connection unusable
  kModelMismatch = 9,       ///< HELLO observation model differs from server's
};
const char* error_code_name(ErrorCode code);

/// Hard bounds the decoder enforces BEFORE allocating or reading a
/// payload. A hostile peer can therefore never make the server reserve
/// more than max_payload bytes, no matter what lengths its headers claim.
struct WireLimits {
  std::size_t max_payload = 1u << 20;   ///< bytes per frame payload
  std::size_t max_batch_events = 8192;  ///< records per EVENT_BATCH
};

/// Typed malformation report of a wire stream: what went wrong, at which
/// byte offset of the connection (or payload, for decode_* helpers), and
/// why — the netio sibling of stream::TraceError / CheckpointError.
struct WireError {
  enum class Kind {
    kTruncatedHeader,   ///< connection died inside a frame header
    kBadMagic,          ///< header does not start with "FXN1"
    kUnknownType,       ///< frame type this version does not speak
    kOversized,         ///< declared payload length exceeds WireLimits
    kTruncatedPayload,  ///< connection died inside a payload
    kMalformedPayload,  ///< length ok, internal structure inconsistent
    kBadStream,         ///< the socket itself failed (read error)
  };
  Kind kind = Kind::kBadStream;
  std::uint64_t offset = 0;  ///< byte offset where the failure was detected
  std::string reason;

  /// "offset 12: bad magic — ..." — for logs and error messages.
  std::string to_string() const;
};

/// Abstract byte producer the frame decoder reads from. netio::Socket is
/// the production implementation; tests feed in-memory buffers (including
/// hostile ones) through the same code path.
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  /// Up to `n` bytes into `buf`. Returns the count read (> 0), 0 at a
  /// clean end of stream, or -1 on a transport error.
  virtual long read_some(char* buf, std::size_t n) = 0;
};

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Incremental frame decoder over a ByteSource. Tracks the connection byte
/// offset so every error pinpoints where the stream went wrong; after the
/// first error the reader stays ended (same sticky contract as
/// TraceReplayer::try_next).
class FrameReader {
 public:
  explicit FrameReader(ByteSource& src, WireLimits limits = {});

  enum class Status {
    kFrame,  ///< `out` holds the next frame
    kEnd,    ///< clean end of stream at a frame boundary
    kError,  ///< malformed / truncated / transport failure; see error()
  };
  Status read(Frame& out);

  const std::optional<WireError>& error() const { return error_; }
  /// Bytes of the connection consumed so far (whole frames).
  std::uint64_t offset() const { return offset_; }

 private:
  ByteSource* src_;
  WireLimits limits_;
  std::uint64_t offset_ = 0;
  std::optional<WireError> error_;
};

/// Header + payload, ready to write. Throws std::invalid_argument when the
/// payload exceeds the u32 length field (callers own WireLimits policy).
std::string encode_frame(FrameType type, std::string_view payload);

// ---------------------------------------------------------------------------
// Message payloads
// ---------------------------------------------------------------------------
// Every decode_* checks each field read against the bytes actually present
// and reports kMalformedPayload with the offset WITHIN the payload; they
// never throw on bad input and never read past the buffer.

struct HelloMsg {
  std::uint32_t version = kWireVersion;
  std::uint32_t tenant = 0;
  std::uint64_t token = 0;
  /// Observation model the client's readings belong to (core::ModelId
  /// values). Encoded as an OPTIONAL trailing u8: a flux client (model 0)
  /// sends the original 16-byte payload byte-identically, so version-1
  /// peers that predate the field interoperate unchanged; a non-flux
  /// client appends one byte, and a decoder missing the byte reads
  /// model 0. A server tracking a different model answers
  /// ERROR{kModelMismatch} and closes.
  std::uint8_t model = 0;
};

struct WelcomeMsg {
  std::uint32_t version = kWireVersion;
  std::uint32_t sessions = 0;  ///< registered sessions of this tenant
  std::uint64_t connection_id = 0;
};

/// Per-batch admission tallies, mirroring stream::PushStatus: every record
/// of the batch lands in exactly one bucket.
struct BatchAckMsg {
  std::uint64_t accepted = 0;  ///< routed (or journaled) for folding
  std::uint64_t shed = 0;      ///< rejected by the tenant admission policy
  std::uint64_t unknown = 0;   ///< no such session registered
  std::uint64_t foreign = 0;   ///< session belongs to another tenant
  std::uint64_t closed = 0;    ///< service closing / gave up
};

struct QueryMsg {
  std::uint32_t user = 0;
};

/// Quiesced per-slot estimates of one session. `time` is the session's
/// virtual-time cursor at the cut.
struct EstimateMsg {
  std::uint32_t user = 0;
  std::uint64_t epochs_fired = 0;
  std::uint64_t events_folded = 0;
  double time = 0.0;
  std::vector<geom::Vec2> estimates;
};

/// Server-side service metrics, the payload of kMetricsReport. Latencies
/// are the ingest-to-estimate samples described in DESIGN.md §15
/// (microseconds, wall-clock, kScheduling-grade).
struct MetricsMsg {
  std::uint64_t events_accepted = 0;
  std::uint64_t events_processed = 0;  ///< folded by workers (quiesced)
  std::uint64_t events_shed = 0;
  std::uint64_t events_unknown = 0;
  std::uint64_t events_foreign = 0;
  std::uint64_t batches = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t error_frames = 0;
  std::uint64_t connections_opened = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t restarts = 0;
  std::uint64_t sessions = 0;
  double wall_seconds = 0.0;
  double events_per_second = 0.0;  ///< processed / wall_seconds
  double ingest_p50_us = 0.0;
  double ingest_p99_us = 0.0;
  double ingest_max_us = 0.0;
  std::uint64_t ingest_samples = 0;
};

struct ErrorMsg {
  ErrorCode code = ErrorCode::kInternal;
  std::uint64_t offset = 0;  ///< connection offset the error refers to
  std::string message;
};

std::string encode_hello(const HelloMsg& msg);
std::string encode_welcome(const WelcomeMsg& msg);
std::string encode_event_batch(std::span<const stream::FluxEvent> events);
std::string encode_batch_ack(const BatchAckMsg& msg);
std::string encode_query(const QueryMsg& msg);
std::string encode_estimate(const EstimateMsg& msg);
std::string encode_metrics(const MetricsMsg& msg);
std::string encode_error(const ErrorMsg& msg);

std::optional<WireError> decode_hello(std::string_view payload, HelloMsg& out);
std::optional<WireError> decode_welcome(std::string_view payload,
                                        WelcomeMsg& out);
std::optional<WireError> decode_event_batch(std::string_view payload,
                                            const WireLimits& limits,
                                            std::vector<stream::FluxEvent>& out);
std::optional<WireError> decode_batch_ack(std::string_view payload,
                                          BatchAckMsg& out);
std::optional<WireError> decode_query(std::string_view payload, QueryMsg& out);
std::optional<WireError> decode_estimate(std::string_view payload,
                                         EstimateMsg& out);
std::optional<WireError> decode_metrics(std::string_view payload,
                                        MetricsMsg& out);
std::optional<WireError> decode_error(std::string_view payload, ErrorMsg& out);

}  // namespace fluxfp::netio
