#include "netio/server.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "numeric/stats.hpp"
#include "obs/instrument.hpp"

namespace fluxfp::netio {

using stream::PushStatus;

Server::Server(stream::Supervisor::ManagerFactory factory,
               stream::SupervisorConfig supervisor_config,
               ServerConfig config)
    : supervisor_(std::move(factory), std::move(supervisor_config)),
      config_(std::move(config)) {}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.load(std::memory_order_relaxed)) {
    throw std::logic_error("Server: already running");
  }
  // Every supervisor interaction happens under ingest_mutex_, including
  // this pre-thread one — the capability analysis knows no "no threads
  // yet" phase, and keeping a single access regime costs one uncontended
  // lock at startup.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> session_tenants;
  {
    support::MutexLock lock(ingest_mutex_);
    supervisor_.start();
    const stream::TrackerManager* manager = supervisor_.manager();
    for (const std::uint32_t user : supervisor_.users()) {
      session_tenants.emplace_back(user,
                                   manager->session_options(user).tenant);
    }
  }
  // Freeze the user -> tenant map: sessions are registered before start and
  // never after, so connection threads read it without a lock.
  for (const auto& [user, tenant] : session_tenants) {
    user_tenant_[user] = tenant;
    ++tenant_sessions_[tenant];
  }
  listener_ = Listener::listen_on(config_.endpoint);
  endpoint_ = listener_.endpoint();
  started_at_ = std::chrono::steady_clock::now();
  running_.store(true, std::memory_order_relaxed);
  accept_thread_ = std::thread(&Server::accept_loop, this);
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_relaxed)) {
    return;
  }
  listener_.shutdown();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  {
    support::MutexLock lock(conns_mutex_);
    for (Connection& conn : conns_) {
      conn.socket.shutdown_both();  // wakes a thread blocked in read_some
    }
    for (Connection& conn : conns_) {
      if (conn.thread.joinable()) {
        conn.thread.join();
      }
    }
    conns_.clear();
  }
  support::MutexLock lock(ingest_mutex_);
  supervisor_.finish();
}

bool Server::running() const {
  return running_.load(std::memory_order_relaxed);
}

void Server::inject_crash() {
  support::MutexLock lock(ingest_mutex_);
  supervisor_.inject_crash();
}

MetricsMsg Server::metrics() {
  support::MutexLock lock(ingest_mutex_);
  if (supervisor_.quiesce()) {
    mark_quiesced_locked();
  }
  return metrics_locked();
}

void Server::accept_loop() {
  while (true) {
    Socket conn_socket = listener_.accept_one();
    if (!conn_socket.valid()) {
      return;  // shutdown() — or the listener itself died
    }
    support::MutexLock lock(conns_mutex_);
    // Reap finished connections so fds and thread handles do not pile up
    // over a long-lived server's lifetime.
    for (auto it = conns_.begin(); it != conns_.end();) {
      // Relaxed: join() below is the real synchronization point.
      if (it->done.load(std::memory_order_relaxed)) {
        if (it->thread.joinable()) {
          it->thread.join();
        }
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    conns_.emplace_back();
    Connection& conn = conns_.back();
    conn.socket = std::move(conn_socket);
    conn.id = next_connection_id_++;
    {
      support::MutexLock ingest(ingest_mutex_);
      ++connections_opened_;
      ++connections_active_;
    }
    FLUXFP_OBS_COUNTER_INC_SCHED("fluxfp_netio_connections_opened_total",
                                 "Connections accepted by the service");
    FLUXFP_OBS_GAUGE_ADD_SCHED("fluxfp_netio_connections_active",
                               "Connections currently being served", 1.0);
    conn.thread = std::thread(&Server::serve_connection, this,
                              std::ref(conn));
  }
}

void Server::serve_connection(Connection& conn) {
  FrameReader reader(conn.socket, config_.limits);
  bool authed = false;
  std::uint32_t tenant = 0;
  Frame frame;
  while (true) {
    const FrameReader::Status status = reader.read(frame);
    if (status == FrameReader::Status::kEnd) {
      break;  // clean close at a frame boundary
    }
    if (status == FrameReader::Status::kError) {
      // Malformed/hostile input never crashes the service: answer a typed
      // ERROR frame (best effort — on kBadStream the write may fail too)
      // and close.
      const WireError& err = *reader.error();
      send_error(conn, ErrorCode::kMalformedFrame, err.offset,
                 err.to_string());
      break;
    }
    {
      support::MutexLock lock(ingest_mutex_);
      ++frames_in_total_;
    }
    if (!handle_frame(conn, authed, tenant, frame)) {
      break;
    }
  }
  conn.socket.shutdown_both();
  {
    support::MutexLock lock(ingest_mutex_);
    --connections_active_;
  }
  FLUXFP_OBS_GAUGE_ADD_SCHED("fluxfp_netio_connections_active",
                             "Connections currently being served", -1.0);
  // Relaxed: the reaper's (or stop()'s) join provides the ordering.
  conn.done.store(true, std::memory_order_relaxed);
}

bool Server::handle_frame(Connection& conn, bool& authed,
                          std::uint32_t& tenant, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kHello: {
      HelloMsg hello;
      if (const auto err = decode_hello(frame.payload, hello)) {
        return send_error(conn, ErrorCode::kMalformedFrame, err->offset,
                          err->to_string());
      }
      if (authed) {
        return send_error(conn, ErrorCode::kMalformedFrame, 0,
                          "duplicate HELLO");
      }
      if (hello.version != kWireVersion) {
        return send_error(conn, ErrorCode::kUnsupportedVersion, 0,
                          "client speaks version " +
                              std::to_string(hello.version) +
                              ", this server speaks " +
                              std::to_string(kWireVersion));
      }
      if (hello.model != config_.model) {
        return send_error(conn, ErrorCode::kModelMismatch, 0,
                          "client readings are model " +
                              std::to_string(hello.model) +
                              ", this server tracks model " +
                              std::to_string(config_.model));
      }
      if (!config_.tenant_tokens.empty()) {
        const auto it = config_.tenant_tokens.find(hello.tenant);
        if (it == config_.tenant_tokens.end() || it->second != hello.token) {
          // One message for both failures: naming which part was wrong
          // would confirm tenant ids to a guessing client.
          return send_error(conn, ErrorCode::kAuthFailed, 0,
                            "unknown tenant or wrong token");
        }
      }
      authed = true;
      tenant = hello.tenant;
      WelcomeMsg welcome;
      welcome.version = kWireVersion;
      const auto sessions = tenant_sessions_.find(tenant);
      welcome.sessions =
          sessions == tenant_sessions_.end() ? 0 : sessions->second;
      welcome.connection_id = conn.id;
      return send_frame(conn, FrameType::kWelcome, encode_welcome(welcome));
    }

    case FrameType::kEventBatch: {
      if (!authed) {
        return send_error(conn, ErrorCode::kNotAuthenticated, 0,
                          "first frame must be HELLO");
      }
      std::vector<stream::FluxEvent> events;
      if (const auto err =
              decode_event_batch(frame.payload, config_.limits, events)) {
        return send_error(conn, ErrorCode::kMalformedFrame, err->offset,
                          err->to_string());
      }
      BatchAckMsg ack;
      {
        support::MutexLock lock(ingest_mutex_);
        ++batches_total_;
        const auto now = std::chrono::steady_clock::now();
        for (const stream::FluxEvent& event : events) {
          const auto owner = user_tenant_.find(event.user);
          if (owner == user_tenant_.end()) {
            ++ack.unknown;
            ++unknown_total_;
            continue;
          }
          if (owner->second != tenant) {
            // Cross-tenant isolation: the event is counted, never offered
            // — one tenant cannot pollute (or probe) another's sessions.
            ++ack.foreign;
            ++foreign_total_;
            continue;
          }
          switch (supervisor_.offer(event)) {
            case PushStatus::kAccepted:
              ++ack.accepted;
              ++accepted_total_;
              if (config_.latency_sample_every > 0 &&
                  accepted_total_ % config_.latency_sample_every == 0 &&
                  pending_samples_.size() < config_.max_latency_samples) {
                pending_samples_.push_back({accepted_total_, now});
              }
              break;
            case PushStatus::kShedQuota:
              ++ack.shed;
              ++shed_total_;
              break;
            case PushStatus::kUnknownUser:
              ++ack.unknown;
              ++unknown_total_;
              break;
            case PushStatus::kClosed:
              ++ack.closed;
              ++closed_total_;
              break;
          }
        }
        observe_progress_locked();
      }
      FLUXFP_OBS_COUNTER_ADD_SCHED("fluxfp_netio_events_accepted_total",
                                   "Events admitted over the wire",
                                   ack.accepted);
      FLUXFP_OBS_COUNTER_ADD_SCHED("fluxfp_netio_events_shed_total",
                                   "Events shed by tenant admission",
                                   ack.shed);
      return send_frame(conn, FrameType::kBatchAck, encode_batch_ack(ack));
    }

    case FrameType::kQueryEstimate: {
      if (!authed) {
        return send_error(conn, ErrorCode::kNotAuthenticated, 0,
                          "first frame must be HELLO");
      }
      QueryMsg query;
      if (const auto err = decode_query(frame.payload, query)) {
        return send_error(conn, ErrorCode::kMalformedFrame, err->offset,
                          err->to_string());
      }
      const auto owner = user_tenant_.find(query.user);
      if (owner == user_tenant_.end() || owner->second != tenant) {
        // A foreign user reads as unknown: tenants cannot enumerate each
        // other's sessions by probing ids.
        return send_error(conn, ErrorCode::kUnknownUser, 0,
                          "no session " + std::to_string(query.user) +
                              " for this tenant");
      }
      EstimateMsg estimate;
      bool shard_up = false;
      {
        support::MutexLock lock(ingest_mutex_);
        shard_up = supervisor_.quiesce();
        if (shard_up) {
          mark_quiesced_locked();
          const stream::StreamTracker& tracker =
              supervisor_.manager()->session(query.user);
          estimate.user = query.user;
          estimate.epochs_fired = tracker.stats().epochs_fired;
          estimate.events_folded = tracker.stats().events;
          estimate.time = tracker.now();
          for (std::size_t slot = 0; slot < tracker.num_users(); ++slot) {
            estimate.estimates.push_back(tracker.estimate(slot));
          }
        }
      }
      if (!shard_up) {
        return send_error(conn, ErrorCode::kUnavailable, 0,
                          "shard down (crash-restore in progress)");
      }
      return send_frame(conn, FrameType::kEstimate,
                        encode_estimate(estimate));
    }

    case FrameType::kSnapshotRequest: {
      if (!authed) {
        return send_error(conn, ErrorCode::kNotAuthenticated, 0,
                          "first frame must be HELLO");
      }
      std::string image;
      {
        support::MutexLock lock(ingest_mutex_);
        image = supervisor_.checkpoint_image();
      }
      if (image.size() > config_.limits.max_payload) {
        return send_error(conn, ErrorCode::kInternal, 0,
                          "checkpoint image (" +
                              std::to_string(image.size()) +
                              " bytes) exceeds the frame payload limit");
      }
      return send_frame(conn, FrameType::kSnapshotImage, image);
    }

    case FrameType::kMetricsRequest: {
      if (!authed) {
        return send_error(conn, ErrorCode::kNotAuthenticated, 0,
                          "first frame must be HELLO");
      }
      MetricsMsg report;
      {
        support::MutexLock lock(ingest_mutex_);
        if (supervisor_.quiesce()) {
          mark_quiesced_locked();
        }
        report = metrics_locked();
      }
      return send_frame(conn, FrameType::kMetricsReport,
                        encode_metrics(report));
    }

    case FrameType::kGoodbye:
      send_frame(conn, FrameType::kGoodbyeOk, std::string());
      return false;

    case FrameType::kWelcome:
    case FrameType::kBatchAck:
    case FrameType::kEstimate:
    case FrameType::kSnapshotImage:
    case FrameType::kMetricsReport:
    case FrameType::kGoodbyeOk:
    case FrameType::kError:
      return send_error(conn, ErrorCode::kMalformedFrame, 0,
                        std::string(frame_type_name(frame.type)) +
                            " is a server-to-client frame");
  }
  return send_error(conn, ErrorCode::kInternal, 0, "unhandled frame type");
}

bool Server::send_error(Connection& conn, ErrorCode code,
                        std::uint64_t offset, const std::string& message) {
  {
    support::MutexLock lock(ingest_mutex_);
    ++error_frames_total_;
  }
  FLUXFP_OBS_COUNTER_INC_SCHED("fluxfp_netio_error_frames_total",
                               "ERROR frames sent to clients");
  ErrorMsg msg;
  msg.code = code;
  msg.offset = offset;
  msg.message = message;
  conn.socket.write_all(encode_frame(FrameType::kError, encode_error(msg)));
  return false;
}

bool Server::send_frame(Connection& conn, FrameType type,
                        const std::string& payload) {
  return conn.socket.write_all(encode_frame(type, payload));
}

void Server::observe_progress_locked() {
  const stream::SupervisorStats sup = supervisor_.stats();
  if (sup.restarts != restarts_seen_) {
    // The new incarnation's processed_live() restarts at zero and re-folds
    // the journal; carry the floor so the estimate stays monotone.
    restarts_seen_ = sup.restarts;
    folded_floor_ = folded_estimate_;
  }
  const stream::TrackerManager* manager = supervisor_.manager();
  if (manager != nullptr) {
    const std::uint64_t estimate =
        std::min(accepted_total_, folded_floor_ + manager->processed_live());
    folded_estimate_ = std::max(folded_estimate_, estimate);
  }
  resolve_samples_locked(std::chrono::steady_clock::now());
}

void Server::mark_quiesced_locked() {
  // A successful quiesce is the exact barrier: everything accepted so far
  // has been folded.
  folded_estimate_ = accepted_total_;
  resolve_samples_locked(std::chrono::steady_clock::now());
}

void Server::resolve_samples_locked(
    std::chrono::steady_clock::time_point now) {
  while (!pending_samples_.empty() &&
         pending_samples_.front().accepted_index <= folded_estimate_) {
    const double micros =
        std::chrono::duration<double, std::micro>(
            now - pending_samples_.front().stamped)
            .count();
    if (latency_micros_.size() < config_.max_latency_samples) {
      latency_micros_.push_back(micros);
    } else if (config_.max_latency_samples > 0) {
      latency_micros_[latency_ring_pos_] = micros;
      latency_ring_pos_ =
          (latency_ring_pos_ + 1) % config_.max_latency_samples;
    }
    pending_samples_.pop_front();
  }
}

MetricsMsg Server::metrics_locked() {
  MetricsMsg out;
  out.events_accepted = accepted_total_;
  out.events_processed = folded_estimate_;
  out.events_shed = shed_total_;
  out.events_unknown = unknown_total_;
  out.events_foreign = foreign_total_;
  out.batches = batches_total_;
  out.frames_in = frames_in_total_;
  out.error_frames = error_frames_total_;
  out.connections_opened = connections_opened_;
  out.connections_active = connections_active_;
  const stream::SupervisorStats sup = supervisor_.stats();
  out.checkpoints = sup.checkpoints;
  out.restarts = sup.restarts;
  out.sessions = user_tenant_.size();
  out.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - started_at_)
                         .count();
  out.events_per_second =
      out.wall_seconds > 0.0
          ? static_cast<double>(out.events_processed) / out.wall_seconds
          : 0.0;
  out.ingest_samples = latency_micros_.size();
  if (!latency_micros_.empty()) {
    out.ingest_p50_us = numeric::percentile(latency_micros_, 0.5);
    out.ingest_p99_us = numeric::percentile(latency_micros_, 0.99);
    out.ingest_max_us = *std::max_element(latency_micros_.begin(),
                                          latency_micros_.end());
  }
  return out;
}

}  // namespace fluxfp::netio
