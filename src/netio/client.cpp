#include "netio/client.hpp"

namespace fluxfp::netio {

bool Client::connect(const Endpoint& endpoint, std::uint32_t tenant,
                     std::uint64_t token, std::uint8_t model) {
  close();
  std::string why;
  socket_ = connect_to(endpoint, &why);
  if (!socket_.valid()) {
    return fail(why);
  }
  reader_.emplace(socket_);
  HelloMsg hello;
  hello.version = kWireVersion;
  hello.tenant = tenant;
  hello.token = token;
  hello.model = model;
  Frame reply;
  if (!roundtrip(FrameType::kHello, encode_hello(hello), FrameType::kWelcome,
                 reply)) {
    return false;
  }
  if (const auto err = decode_welcome(reply.payload, welcome_)) {
    return fail("malformed WELCOME: " + err->to_string());
  }
  return true;
}

bool Client::send_batch(std::span<const stream::FluxEvent> events,
                        BatchAckMsg& ack) {
  Frame reply;
  if (!roundtrip(FrameType::kEventBatch, encode_event_batch(events),
                 FrameType::kBatchAck, reply)) {
    return false;
  }
  if (const auto err = decode_batch_ack(reply.payload, ack)) {
    return fail("malformed BATCH_ACK: " + err->to_string());
  }
  return true;
}

bool Client::query_estimate(std::uint32_t user, EstimateMsg& out) {
  QueryMsg query;
  query.user = user;
  Frame reply;
  if (!roundtrip(FrameType::kQueryEstimate, encode_query(query),
                 FrameType::kEstimate, reply)) {
    return false;
  }
  if (const auto err = decode_estimate(reply.payload, out)) {
    return fail("malformed ESTIMATE: " + err->to_string());
  }
  return true;
}

bool Client::snapshot(std::string& image) {
  Frame reply;
  if (!roundtrip(FrameType::kSnapshotRequest, std::string(),
                 FrameType::kSnapshotImage, reply)) {
    return false;
  }
  image = std::move(reply.payload);
  return true;
}

bool Client::metrics(MetricsMsg& out) {
  Frame reply;
  if (!roundtrip(FrameType::kMetricsRequest, std::string(),
                 FrameType::kMetricsReport, reply)) {
    return false;
  }
  if (const auto err = decode_metrics(reply.payload, out)) {
    return fail("malformed METRICS_REPORT: " + err->to_string());
  }
  return true;
}

bool Client::goodbye() {
  Frame reply;
  const bool acked = roundtrip(FrameType::kGoodbye, std::string(),
                               FrameType::kGoodbyeOk, reply);
  close();
  return acked;
}

void Client::close() {
  socket_.close();
  reader_.reset();
}

bool Client::roundtrip(FrameType type, const std::string& payload,
                       FrameType want, Frame& reply) {
  server_error_.reset();
  if (!socket_.valid() || !reader_) {
    return fail("not connected");
  }
  if (!socket_.write_all(encode_frame(type, payload))) {
    return fail(std::string("writing ") + frame_type_name(type) +
                " failed (peer gone)");
  }
  const FrameReader::Status status = reader_->read(reply);
  if (status == FrameReader::Status::kEnd) {
    return fail(std::string("server closed instead of answering ") +
                frame_type_name(type));
  }
  if (status == FrameReader::Status::kError) {
    return fail("reply stream broke: " + reader_->error()->to_string());
  }
  if (reply.type == FrameType::kError) {
    ErrorMsg err;
    if (decode_error(reply.payload, err) == std::nullopt) {
      server_error_ = err;
      return fail(std::string("server error: ") + error_code_name(err.code) +
                  (err.message.empty() ? "" : " — " + err.message));
    }
    return fail("server sent an undecodable ERROR frame");
  }
  if (reply.type != want) {
    return fail(std::string("expected ") + frame_type_name(want) + ", got " +
                frame_type_name(reply.type));
  }
  return true;
}

bool Client::fail(const std::string& why) {
  last_error_ = why;
  socket_.close();
  reader_.reset();
  return false;
}

}  // namespace fluxfp::netio
