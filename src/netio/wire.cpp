#include "netio/wire.hpp"

#include <cstring>
#include <stdexcept>

#include "core/observation_model.hpp"

namespace fluxfp::netio {

namespace {

// ---------------------------------------------------------------------------
// Bounds-checked cursors
// ---------------------------------------------------------------------------

/// Sequential reader over one payload. Every get_* checks the remaining
/// bytes first; on a short read it records a kMalformedPayload error at the
/// current offset and every later get_* fails fast.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view bytes) : bytes_(bytes) {}

  bool u8(std::uint8_t& v) { return fixed(&v, sizeof(v), "u8"); }
  bool u16(std::uint16_t& v) { return fixed(&v, sizeof(v), "u16"); }
  bool u32(std::uint32_t& v) { return fixed(&v, sizeof(v), "u32"); }
  bool u64(std::uint64_t& v) { return fixed(&v, sizeof(v), "u64"); }
  bool f64(double& v) { return fixed(&v, sizeof(v), "f64"); }

  bool raw(char* dst, std::size_t n, const char* what) {
    return fixed(dst, n, what);
  }

  bool str(std::string& out, std::size_t n, const char* what) {
    if (!require(n, what)) {
      return false;
    }
    out.assign(bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  /// All bytes consumed and no earlier failure.
  bool done() {
    if (error_) {
      return false;
    }
    if (pos_ != bytes_.size()) {
      error_ = WireError{WireError::Kind::kMalformedPayload, pos_,
                         std::to_string(bytes_.size() - pos_) +
                             " trailing payload bytes"};
      return false;
    }
    return true;
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }
  const std::optional<WireError>& error() const { return error_; }

  std::optional<WireError> fail(const std::string& reason) {
    if (!error_) {
      error_ = WireError{WireError::Kind::kMalformedPayload, pos_, reason};
    }
    return error_;
  }

 private:
  bool require(std::size_t n, const char* what) {
    if (error_) {
      return false;
    }
    if (bytes_.size() - pos_ < n) {
      error_ = WireError{WireError::Kind::kMalformedPayload, pos_,
                         std::string("payload ends inside ") + what + " (" +
                             std::to_string(bytes_.size() - pos_) + " of " +
                             std::to_string(n) + " bytes left)"};
      return false;
    }
    return true;
  }

  bool fixed(void* dst, std::size_t n, const char* what) {
    if (!require(n, what)) {
      return false;
    }
    std::memcpy(dst, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  std::optional<WireError> error_;
};

struct PayloadWriter {
  std::string bytes;

  void u8(std::uint8_t v) { raw(&v, sizeof(v)); }
  void u16(std::uint16_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void raw(const void* src, std::size_t n) {
    bytes.append(static_cast<const char*>(src), n);
  }
};

const char* kind_name(WireError::Kind kind) {
  switch (kind) {
    case WireError::Kind::kTruncatedHeader:
      return "truncated frame header";
    case WireError::Kind::kBadMagic:
      return "bad magic";
    case WireError::Kind::kUnknownType:
      return "unknown frame type";
    case WireError::Kind::kOversized:
      return "oversized frame";
    case WireError::Kind::kTruncatedPayload:
      return "truncated payload";
    case WireError::Kind::kMalformedPayload:
      return "malformed payload";
    case WireError::Kind::kBadStream:
      return "stream failure";
  }
  return "unknown";
}

/// Reads exactly `n` bytes. Returns the count actually obtained (== n on
/// success); sets `bad` on a transport error.
std::size_t read_exact(ByteSource& src, char* dst, std::size_t n, bool& bad) {
  std::size_t got = 0;
  while (got < n) {
    const long r = src.read_some(dst + got, n - got);
    if (r < 0) {
      bad = true;
      return got;
    }
    if (r == 0) {
      return got;  // end of stream
    }
    got += static_cast<std::size_t>(r);
  }
  return got;
}

}  // namespace

bool known_frame_type(std::uint16_t raw) {
  return raw >= static_cast<std::uint16_t>(FrameType::kHello) &&
         raw <= static_cast<std::uint16_t>(FrameType::kError);
}

const char* frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "HELLO";
    case FrameType::kWelcome:
      return "WELCOME";
    case FrameType::kEventBatch:
      return "EVENT_BATCH";
    case FrameType::kBatchAck:
      return "BATCH_ACK";
    case FrameType::kQueryEstimate:
      return "QUERY_ESTIMATE";
    case FrameType::kEstimate:
      return "ESTIMATE";
    case FrameType::kSnapshotRequest:
      return "SNAPSHOT_REQUEST";
    case FrameType::kSnapshotImage:
      return "SNAPSHOT_IMAGE";
    case FrameType::kMetricsRequest:
      return "METRICS_REQUEST";
    case FrameType::kMetricsReport:
      return "METRICS_REPORT";
    case FrameType::kGoodbye:
      return "GOODBYE";
    case FrameType::kGoodbyeOk:
      return "GOODBYE_OK";
    case FrameType::kError:
      return "ERROR";
  }
  return "?";
}

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kMalformedFrame:
      return "malformed frame";
    case ErrorCode::kUnsupportedVersion:
      return "unsupported version";
    case ErrorCode::kAuthFailed:
      return "auth failed";
    case ErrorCode::kNotAuthenticated:
      return "not authenticated";
    case ErrorCode::kUnavailable:
      return "temporarily unavailable";
    case ErrorCode::kUnknownUser:
      return "unknown user";
    case ErrorCode::kServiceClosing:
      return "service closing";
    case ErrorCode::kInternal:
      return "internal error";
    case ErrorCode::kModelMismatch:
      return "observation model mismatch";
  }
  return "?";
}

std::string WireError::to_string() const {
  return "offset " + std::to_string(offset) + ": " + kind_name(kind) +
         (reason.empty() ? "" : " — " + reason);
}

FrameReader::FrameReader(ByteSource& src, WireLimits limits)
    : src_(&src), limits_(limits) {}

FrameReader::Status FrameReader::read(Frame& out) {
  if (error_) {
    return Status::kError;  // sticky: the stream already ended badly
  }
  char header[kFrameHeaderBytes];
  bool bad = false;
  const std::size_t got = read_exact(*src_, header, sizeof(header), bad);
  if (got == 0 && !bad) {
    return Status::kEnd;  // clean close between frames
  }
  if (got != sizeof(header)) {
    error_ = WireError{bad ? WireError::Kind::kBadStream
                           : WireError::Kind::kTruncatedHeader,
                       offset_ + got,
                       "got " + std::to_string(got) + " of " +
                           std::to_string(kFrameHeaderBytes) +
                           " header bytes"};
    return Status::kError;
  }
  if (std::memcmp(header, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    error_ = WireError{WireError::Kind::kBadMagic, offset_,
                       "frame does not start with FXN1"};
    return Status::kError;
  }
  std::uint16_t raw_type = 0;
  std::uint32_t length = 0;
  std::memcpy(&raw_type, header + 4, sizeof(raw_type));
  std::memcpy(&length, header + 8, sizeof(length));
  if (!known_frame_type(raw_type)) {
    error_ = WireError{WireError::Kind::kUnknownType, offset_ + 4,
                       "type " + std::to_string(raw_type)};
    return Status::kError;
  }
  if (length > limits_.max_payload) {
    // Checked BEFORE any allocation: a hostile length can never make us
    // reserve the declared bytes.
    error_ = WireError{WireError::Kind::kOversized, offset_ + 8,
                       "declared payload " + std::to_string(length) +
                           " bytes exceeds limit " +
                           std::to_string(limits_.max_payload)};
    return Status::kError;
  }
  out.type = static_cast<FrameType>(raw_type);
  out.payload.resize(length);
  if (length > 0) {
    bad = false;
    const std::size_t body =
        read_exact(*src_, out.payload.data(), length, bad);
    if (body != length) {
      error_ = WireError{bad ? WireError::Kind::kBadStream
                             : WireError::Kind::kTruncatedPayload,
                         offset_ + kFrameHeaderBytes + body,
                         frame_type_name(out.type) + std::string(" payload cut "
                         "short: got ") + std::to_string(body) + " of " +
                             std::to_string(length) + " bytes"};
      return Status::kError;
    }
  }
  offset_ += kFrameHeaderBytes + length;
  return Status::kFrame;
}

std::string encode_frame(FrameType type, std::string_view payload) {
  if (payload.size() > 0xffffffffu) {
    throw std::invalid_argument("encode_frame: payload too large");
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.append(kFrameMagic, sizeof(kFrameMagic));
  const auto raw_type = static_cast<std::uint16_t>(type);
  const std::uint16_t reserved = 0;
  const auto length = static_cast<std::uint32_t>(payload.size());
  frame.append(reinterpret_cast<const char*>(&raw_type), sizeof(raw_type));
  frame.append(reinterpret_cast<const char*>(&reserved), sizeof(reserved));
  frame.append(reinterpret_cast<const char*>(&length), sizeof(length));
  frame.append(payload);
  return frame;
}

// ---------------------------------------------------------------------------
// Message codecs
// ---------------------------------------------------------------------------

std::string encode_hello(const HelloMsg& msg) {
  PayloadWriter w;
  w.u32(msg.version);
  w.u32(msg.tenant);
  w.u64(msg.token);
  // The model byte is appended only when it carries information: a flux
  // HELLO stays byte-identical to the pre-model-tag encoding, so peers
  // that predate the field keep interoperating.
  if (msg.model != 0) {
    w.u8(msg.model);
  }
  return w.bytes;
}

std::optional<WireError> decode_hello(std::string_view payload,
                                      HelloMsg& out) {
  PayloadReader r(payload);
  r.u32(out.version);
  r.u32(out.tenant);
  r.u64(out.token);
  out.model = 0;  // absent trailing byte means flux
  if (!r.error() && r.remaining() > 0) {
    r.u8(out.model);
    if (!r.error() && !core::known_model_id(out.model)) {
      return r.fail("unknown observation-model id " +
                    std::to_string(out.model));
    }
  }
  if (!r.done()) {
    return r.error();
  }
  return std::nullopt;
}

std::string encode_welcome(const WelcomeMsg& msg) {
  PayloadWriter w;
  w.u32(msg.version);
  w.u32(msg.sessions);
  w.u64(msg.connection_id);
  return w.bytes;
}

std::optional<WireError> decode_welcome(std::string_view payload,
                                        WelcomeMsg& out) {
  PayloadReader r(payload);
  r.u32(out.version);
  r.u32(out.sessions);
  r.u64(out.connection_id);
  if (!r.done()) {
    return r.error();
  }
  return std::nullopt;
}

std::string encode_event_batch(std::span<const stream::FluxEvent> events) {
  PayloadWriter w;
  w.u32(static_cast<std::uint32_t>(events.size()));
  w.u32(0);  // reserved
  char record[kEventRecordBytes];
  for (const stream::FluxEvent& e : events) {
    stream::encode_trace_record(record, e);
    w.raw(record, sizeof(record));
  }
  return w.bytes;
}

std::optional<WireError> decode_event_batch(
    std::string_view payload, const WireLimits& limits,
    std::vector<stream::FluxEvent>& out) {
  PayloadReader r(payload);
  std::uint32_t count = 0;
  std::uint32_t reserved = 0;
  if (!r.u32(count) || !r.u32(reserved)) {
    return r.error();
  }
  if (count > limits.max_batch_events) {
    return r.fail("batch declares " + std::to_string(count) +
                  " events, limit " +
                  std::to_string(limits.max_batch_events));
  }
  // Exact-size check up front so `count` can never force a speculative
  // allocation larger than the bytes actually sent.
  const std::size_t want =
      static_cast<std::size_t>(count) * kEventRecordBytes;
  if (payload.size() - r.pos() != want) {
    return r.fail("batch of " + std::to_string(count) + " events needs " +
                  std::to_string(want) + " record bytes, payload has " +
                  std::to_string(payload.size() - r.pos()));
  }
  out.clear();
  out.reserve(count);
  char record[kEventRecordBytes];
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!r.raw(record, sizeof(record), "event record")) {
      return r.error();
    }
    stream::FluxEvent e;
    stream::decode_trace_record(record, e);
    out.push_back(e);
  }
  if (!r.done()) {
    return r.error();
  }
  return std::nullopt;
}

std::string encode_batch_ack(const BatchAckMsg& msg) {
  PayloadWriter w;
  w.u64(msg.accepted);
  w.u64(msg.shed);
  w.u64(msg.unknown);
  w.u64(msg.foreign);
  w.u64(msg.closed);
  return w.bytes;
}

std::optional<WireError> decode_batch_ack(std::string_view payload,
                                          BatchAckMsg& out) {
  PayloadReader r(payload);
  r.u64(out.accepted);
  r.u64(out.shed);
  r.u64(out.unknown);
  r.u64(out.foreign);
  r.u64(out.closed);
  if (!r.done()) {
    return r.error();
  }
  return std::nullopt;
}

std::string encode_query(const QueryMsg& msg) {
  PayloadWriter w;
  w.u32(msg.user);
  return w.bytes;
}

std::optional<WireError> decode_query(std::string_view payload,
                                      QueryMsg& out) {
  PayloadReader r(payload);
  r.u32(out.user);
  if (!r.done()) {
    return r.error();
  }
  return std::nullopt;
}

std::string encode_estimate(const EstimateMsg& msg) {
  PayloadWriter w;
  w.u32(msg.user);
  w.u32(static_cast<std::uint32_t>(msg.estimates.size()));
  w.u64(msg.epochs_fired);
  w.u64(msg.events_folded);
  w.f64(msg.time);
  for (const geom::Vec2& p : msg.estimates) {
    w.f64(p.x);
    w.f64(p.y);
  }
  return w.bytes;
}

std::optional<WireError> decode_estimate(std::string_view payload,
                                         EstimateMsg& out) {
  PayloadReader r(payload);
  std::uint32_t slots = 0;
  if (!r.u32(out.user) || !r.u32(slots) || !r.u64(out.epochs_fired) ||
      !r.u64(out.events_folded) || !r.f64(out.time)) {
    return r.error();
  }
  const std::size_t want = static_cast<std::size_t>(slots) * 16;
  if (payload.size() - r.pos() != want) {
    return r.fail("estimate declares " + std::to_string(slots) +
                  " slots, payload has " +
                  std::to_string(payload.size() - r.pos()) + " bytes");
  }
  out.estimates.clear();
  out.estimates.reserve(slots);
  for (std::uint32_t i = 0; i < slots; ++i) {
    geom::Vec2 p;
    if (!r.f64(p.x) || !r.f64(p.y)) {
      return r.error();
    }
    out.estimates.push_back(p);
  }
  if (!r.done()) {
    return r.error();
  }
  return std::nullopt;
}

std::string encode_metrics(const MetricsMsg& msg) {
  PayloadWriter w;
  w.u64(msg.events_accepted);
  w.u64(msg.events_processed);
  w.u64(msg.events_shed);
  w.u64(msg.events_unknown);
  w.u64(msg.events_foreign);
  w.u64(msg.batches);
  w.u64(msg.frames_in);
  w.u64(msg.error_frames);
  w.u64(msg.connections_opened);
  w.u64(msg.connections_active);
  w.u64(msg.checkpoints);
  w.u64(msg.restarts);
  w.u64(msg.sessions);
  w.f64(msg.wall_seconds);
  w.f64(msg.events_per_second);
  w.f64(msg.ingest_p50_us);
  w.f64(msg.ingest_p99_us);
  w.f64(msg.ingest_max_us);
  w.u64(msg.ingest_samples);
  return w.bytes;
}

std::optional<WireError> decode_metrics(std::string_view payload,
                                        MetricsMsg& out) {
  PayloadReader r(payload);
  r.u64(out.events_accepted);
  r.u64(out.events_processed);
  r.u64(out.events_shed);
  r.u64(out.events_unknown);
  r.u64(out.events_foreign);
  r.u64(out.batches);
  r.u64(out.frames_in);
  r.u64(out.error_frames);
  r.u64(out.connections_opened);
  r.u64(out.connections_active);
  r.u64(out.checkpoints);
  r.u64(out.restarts);
  r.u64(out.sessions);
  r.f64(out.wall_seconds);
  r.f64(out.events_per_second);
  r.f64(out.ingest_p50_us);
  r.f64(out.ingest_p99_us);
  r.f64(out.ingest_max_us);
  r.u64(out.ingest_samples);
  if (!r.done()) {
    return r.error();
  }
  return std::nullopt;
}

std::string encode_error(const ErrorMsg& msg) {
  PayloadWriter w;
  w.u32(static_cast<std::uint32_t>(msg.code));
  w.u64(msg.offset);
  w.u32(static_cast<std::uint32_t>(msg.message.size()));
  w.raw(msg.message.data(), msg.message.size());
  return w.bytes;
}

std::optional<WireError> decode_error(std::string_view payload,
                                      ErrorMsg& out) {
  PayloadReader r(payload);
  std::uint32_t code = 0;
  std::uint32_t text_len = 0;
  if (!r.u32(code) || !r.u64(out.offset) || !r.u32(text_len)) {
    return r.error();
  }
  if (code < static_cast<std::uint32_t>(ErrorCode::kMalformedFrame) ||
      code > static_cast<std::uint32_t>(ErrorCode::kModelMismatch)) {
    return r.fail("unknown error code " + std::to_string(code));
  }
  out.code = static_cast<ErrorCode>(code);
  if (!r.str(out.message, text_len, "error text")) {
    return r.error();
  }
  if (!r.done()) {
    return r.error();
  }
  return std::nullopt;
}

}  // namespace fluxfp::netio
