#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "netio/socket.hpp"
#include "netio/wire.hpp"
#include "stream/supervisor.hpp"
#include "support/thread_annotations.hpp"

namespace fluxfp::netio {

/// Service policy knobs on top of the stream layer's own configuration
/// (sharding/admission lives in ManagerConfig, crash recovery in
/// SupervisorConfig — the server adds only what the wire needs).
struct ServerConfig {
  /// Where to listen. TCP port 0 picks an ephemeral port; endpoint()
  /// reports the resolved address.
  Endpoint endpoint;

  /// Decoder bounds applied to every connection.
  WireLimits limits;

  /// tenant id -> auth token. Empty = open auth (any HELLO is welcome —
  /// loopback demos); non-empty = a HELLO for an unlisted tenant or with
  /// the wrong token is refused with ERROR{kAuthFailed}.
  std::map<std::uint32_t, std::uint64_t> tenant_tokens;

  /// Observation model the hosted trackers fold (core::ModelId values).
  /// A HELLO declaring a different model is refused with
  /// ERROR{kModelMismatch} — readings are meaningless to a tracker built
  /// for another sensing modality. Clients that predate the model byte
  /// implicitly declare flux (0), so a flux server keeps accepting them.
  std::uint8_t model = 0;

  /// Ingest-to-estimate latency sampling: every Nth accepted event is
  /// stamped on arrival and resolved when the server next observes that
  /// the event has been folded. 0 disables sampling.
  std::size_t latency_sample_every = 16;
  /// Resolved samples kept for the percentile report (oldest dropped).
  std::size_t max_latency_samples = 65536;
};

/// The FXN1 tracking service: accepts connections on one endpoint,
/// authenticates tenants, and feeds EVENT_BATCH frames through a
/// stream::Supervisor into the TrackerManager — so a crashing shard
/// checkpoint-restores under the connections without dropping them
/// (batches offered while the shard is down are journaled and acknowledged
/// kAccepted, exactly the Supervisor deferral contract).
///
/// Threading: one accept-loop thread plus one thread per connection (the
/// sanctioned raw-thread layout; no poll/epoll). The Supervisor demands a
/// single coordinating thread, so EVERY supervisor interaction — offers,
/// quiesced queries, metrics, crash injection — serializes on one ingest
/// mutex; connection threads contend there per frame, not per event.
/// Backpressure per admission policy flows through that lock: under
/// kBlock an over-quota batch stalls its connection (and any connection
/// behind the lock) until workers drain — lossless; under kShed* the
/// offer returns immediately and the shed counts ride back on BATCH_ACK.
///
/// Queries quiesce: QUERY_ESTIMATE and METRICS drain the shard before
/// reading, so a client that saw BATCH_ACK{accepted=n} and then queries
/// observes every one of its n events folded (while the shard is up).
class Server {
 public:
  /// `factory`/`supervisor_config` are handed to the Supervisor verbatim.
  Server(stream::Supervisor::ManagerFactory factory,
         stream::SupervisorConfig supervisor_config, ServerConfig config);
  /// stop()s if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Starts the supervisor (baseline checkpoint), binds the endpoint, and
  /// launches the accept loop. Throws on bind failure or a supervisor
  /// that cannot start.
  void start();

  /// Stops accepting, shuts every connection socket (waking blocked
  /// reads), joins all threads, and finish()es the supervisor (final
  /// image). Idempotent.
  void stop();

  bool running() const;

  /// The bound address (TCP port 0 resolved). Valid after start().
  const Endpoint& endpoint() const { return endpoint_; }

  /// Test / fault hook: kill the live shard now (Supervisor::inject_crash
  /// under the ingest lock). Accepted history is checkpoint+journal
  /// protected; connections stay up.
  void inject_crash();

  /// Current service metrics (also the METRICS frame payload). Quiesces
  /// the shard when it is up, so events_processed is exact at the cut.
  MetricsMsg metrics();

 private:
  struct Connection {
    Socket socket;
    std::thread thread;
    std::uint64_t id = 0;
    /// Thread finished (joinable without blocking); the accept loop reaps
    /// done connections so a long-lived server does not hoard fds.
    std::atomic<bool> done{false};
  };

  /// One pending ingest-latency sample: the cumulative accepted-event
  /// count at the stamp, and when it was stamped.
  struct LatencySample {
    std::uint64_t accepted_index = 0;
    std::chrono::steady_clock::time_point stamped;
  };

  void accept_loop();
  void serve_connection(Connection& conn);
  /// Handles one decoded frame. False ends the connection (after kError /
  /// kGoodbye). Takes ingest_mutex_ internally as needed.
  bool handle_frame(Connection& conn, bool& authed, std::uint32_t& tenant,
                    const Frame& frame);
  /// Writes an ERROR frame and counts it. Always returns false (the
  /// connection is over).
  bool send_error(Connection& conn, ErrorCode code, std::uint64_t offset,
                  const std::string& message);
  bool send_frame(Connection& conn, FrameType type,
                  const std::string& payload);

  // The `_locked` methods require ingest_mutex_ — the requirement is now
  // compiler-checked (FLUXFP_REQUIRES), not a naming convention.
  /// Folds freshly observed progress into folded_estimate_ and resolves
  /// every pending latency sample the progress covers.
  void observe_progress_locked() FLUXFP_REQUIRES(ingest_mutex_);
  /// Marks everything accepted so far folded (call after a successful
  /// quiesce — the exact barrier).
  void mark_quiesced_locked() FLUXFP_REQUIRES(ingest_mutex_);
  void resolve_samples_locked(std::chrono::steady_clock::time_point now)
      FLUXFP_REQUIRES(ingest_mutex_);
  MetricsMsg metrics_locked() FLUXFP_REQUIRES(ingest_mutex_);

  /// The Supervisor demands a single coordinating thread; guarding the
  /// object itself with ingest_mutex_ is how that contract is enforced
  /// statically (see stream/supervisor.hpp "Threading").
  stream::Supervisor supervisor_ FLUXFP_GUARDED_BY(ingest_mutex_);
  ServerConfig config_;
  Endpoint endpoint_;
  Listener listener_;
  std::thread accept_thread_;
  /// Lifecycle flag. Relaxed everywhere: start/stop publication happens
  /// via thread creation and the shutdown/join handshake; this flag only
  /// makes stop() idempotent and running() advisory.
  std::atomic<bool> running_{false};  // fluxfp-lint: allow(atomics-policy) -- lifecycle flag read lock-free by accept/conn loops; folding it under conns_mutex_ would deadlock stop() against join

  /// user id -> owning tenant, frozen at start() before any connection
  /// thread exists; read bare afterwards (never guarded, never written).
  std::unordered_map<std::uint32_t, std::uint32_t> user_tenant_;
  /// tenant -> registered session count (WELCOME's `sessions`).
  std::unordered_map<std::uint32_t, std::uint32_t> tenant_sessions_;

  support::Mutex conns_mutex_;
  std::list<Connection> conns_ FLUXFP_GUARDED_BY(conns_mutex_);
  std::uint64_t next_connection_id_ FLUXFP_GUARDED_BY(conns_mutex_) = 1;

  /// Serializes every Supervisor interaction and guards the counters.
  /// Canonical order: conns_mutex_ before ingest_mutex_ (the accept loop
  /// nests them that way); see DESIGN.md's lock-order graph.
  support::Mutex ingest_mutex_;
  std::chrono::steady_clock::time_point started_at_;
  std::uint64_t accepted_total_ FLUXFP_GUARDED_BY(ingest_mutex_) = 0;
  std::uint64_t shed_total_ FLUXFP_GUARDED_BY(ingest_mutex_) = 0;
  std::uint64_t unknown_total_ FLUXFP_GUARDED_BY(ingest_mutex_) = 0;
  std::uint64_t foreign_total_ FLUXFP_GUARDED_BY(ingest_mutex_) = 0;
  std::uint64_t closed_total_ FLUXFP_GUARDED_BY(ingest_mutex_) = 0;
  std::uint64_t batches_total_ FLUXFP_GUARDED_BY(ingest_mutex_) = 0;
  std::uint64_t frames_in_total_ FLUXFP_GUARDED_BY(ingest_mutex_) = 0;
  std::uint64_t error_frames_total_ FLUXFP_GUARDED_BY(ingest_mutex_) = 0;
  std::uint64_t connections_opened_ FLUXFP_GUARDED_BY(ingest_mutex_) = 0;
  std::uint64_t connections_active_ FLUXFP_GUARDED_BY(ingest_mutex_) = 0;
  /// Monotone lower bound on "events folded": advanced by processed_live
  /// observations while one incarnation runs, snapped exact to
  /// accepted_total_ at every quiesce barrier. Restart replays make the
  /// in-between estimate approximate — documented as kScheduling-grade.
  std::uint64_t folded_estimate_ FLUXFP_GUARDED_BY(ingest_mutex_) = 0;
  /// Carried across shard restarts.
  std::uint64_t folded_floor_ FLUXFP_GUARDED_BY(ingest_mutex_) = 0;
  std::uint64_t restarts_seen_ FLUXFP_GUARDED_BY(ingest_mutex_) = 0;
  std::deque<LatencySample> pending_samples_
      FLUXFP_GUARDED_BY(ingest_mutex_);
  /// Resolved samples, bounded ring.
  std::vector<double> latency_micros_ FLUXFP_GUARDED_BY(ingest_mutex_);
  std::size_t latency_ring_pos_ FLUXFP_GUARDED_BY(ingest_mutex_) = 0;
};

}  // namespace fluxfp::netio
