#include "netio/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace fluxfp::netio {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Parses a base-10 port; false on junk or out-of-range.
bool parse_port(std::string_view text, std::uint16_t& out) {
  if (text.empty() || text.size() > 5) {
    return false;
  }
  std::uint32_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<std::uint32_t>(c - '0');
  }
  if (value > 0xffff) {
    return false;
  }
  out = static_cast<std::uint16_t>(value);
  return true;
}

/// Fills a sockaddr_in for the endpoint's host:port; false on a host that
/// is neither an IPv4 literal nor "localhost" (no resolver here — the
/// service is a loopback/cluster tool, DNS would drag in getaddrinfo and
/// its failure modes).
bool fill_inet(const Endpoint& ep, sockaddr_in& addr, std::string* error) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  const std::string host = ep.host == "localhost" ? "127.0.0.1" : ep.host;
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) {
      *error = "not an IPv4 address: " + ep.host;
    }
    return false;
  }
  return true;
}

bool fill_unix(const Endpoint& ep, sockaddr_un& addr, std::string* error) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (ep.path.empty() || ep.path.size() >= sizeof(addr.sun_path)) {
    if (error) {
      *error = "unix socket path empty or longer than " +
               std::to_string(sizeof(addr.sun_path) - 1) + " bytes: " +
               ep.path;
    }
    return false;
  }
  std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
  return true;
}

}  // namespace

std::optional<Endpoint> Endpoint::parse(std::string_view spec,
                                        std::string* error) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Kind::kUnix;
    ep.path = std::string(spec.substr(5));
    if (ep.path.empty()) {
      if (error) {
        *error = "unix: needs a path";
      }
      return std::nullopt;
    }
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string_view rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string_view::npos || colon == 0) {
      if (error) {
        *error = "tcp: needs HOST:PORT";
      }
      return std::nullopt;
    }
    ep.kind = Kind::kTcp;
    ep.host = std::string(rest.substr(0, colon));
    if (!parse_port(rest.substr(colon + 1), ep.port)) {
      if (error) {
        *error = "bad port: " + std::string(rest.substr(colon + 1));
      }
      return std::nullopt;
    }
    return ep;
  }
  if (error) {
    *error = "address must start with unix: or tcp: — got " +
             std::string(spec);
  }
  return std::nullopt;
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) {
    return "unix:" + path;
  }
  return "tcp:" + host + ":" + std::to_string(port);
}

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

long Socket::read_some(char* buf, std::size_t n) {
  if (fd_ < 0) {
    return -1;
  }
  while (true) {
    const ssize_t got = ::recv(fd_, buf, n, 0);
    if (got >= 0) {
      return static_cast<long>(got);
    }
    if (errno == EINTR) {
      continue;
    }
    return -1;
  }
}

bool Socket::write_all(std::string_view bytes) {
  if (fd_ < 0) {
    return false;
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t put =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(put);
  }
  return true;
}

void Socket::shutdown_both() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::~Listener() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  if (unlink_on_close_ && !endpoint_.path.empty()) {
    ::unlink(endpoint_.path.c_str());
  }
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_),
      endpoint_(std::move(other.endpoint_)),
      unlink_on_close_(other.unlink_on_close_) {
  other.fd_ = -1;
  other.unlink_on_close_ = false;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    if (unlink_on_close_ && !endpoint_.path.empty()) {
      ::unlink(endpoint_.path.c_str());
    }
    fd_ = other.fd_;
    endpoint_ = std::move(other.endpoint_);
    unlink_on_close_ = other.unlink_on_close_;
    other.fd_ = -1;
    other.unlink_on_close_ = false;
  }
  return *this;
}

Listener Listener::listen_on(const Endpoint& endpoint) {
  Listener out;
  out.endpoint_ = endpoint;
  std::string why;
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr;
    if (!fill_unix(endpoint, addr, &why)) {
      throw std::runtime_error("listen_on: " + why);
    }
    out.fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (out.fd_ < 0) {
      throw std::runtime_error(errno_text("listen_on: socket"));
    }
    // A stale socket file from a dead server would make bind fail with
    // EADDRINUSE even though nobody is listening; replace it.
    ::unlink(endpoint.path.c_str());
    if (::bind(out.fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw std::runtime_error(
          errno_text(("listen_on: bind " + endpoint.to_string()).c_str()));
    }
    out.unlink_on_close_ = true;
  } else {
    sockaddr_in addr;
    if (!fill_inet(endpoint, addr, &why)) {
      throw std::runtime_error("listen_on: " + why);
    }
    out.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (out.fd_ < 0) {
      throw std::runtime_error(errno_text("listen_on: socket"));
    }
    const int one = 1;
    ::setsockopt(out.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(out.fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw std::runtime_error(
          errno_text(("listen_on: bind " + endpoint.to_string()).c_str()));
    }
    // Port 0 asked the kernel to pick; report what it chose.
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(out.fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      out.endpoint_.port = ntohs(bound.sin_port);
    }
  }
  if (::listen(out.fd_, 64) != 0) {
    throw std::runtime_error(errno_text("listen_on: listen"));
  }
  return out;
}

Socket Listener::accept_one() {
  if (fd_ < 0) {
    return Socket();
  }
  while (true) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) {
      return Socket(conn);
    }
    if (errno == EINTR) {
      continue;
    }
    // shutdown() surfaces here (EINVAL on Linux); any other persistent
    // failure also ends the accept loop.
    return Socket();
  }
}

void Listener::shutdown() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

Socket connect_to(const Endpoint& endpoint, std::string* error) {
  std::string why;
  int fd = -1;
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr;
    if (!fill_unix(endpoint, addr, &why)) {
      if (error) {
        *error = why;
      }
      return Socket();
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      if (error) {
        *error = errno_text("socket");
      }
      return Socket();
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      if (error) {
        *error = errno_text(("connect " + endpoint.to_string()).c_str());
      }
      ::close(fd);
      return Socket();
    }
  } else {
    sockaddr_in addr;
    if (!fill_inet(endpoint, addr, &why)) {
      if (error) {
        *error = why;
      }
      return Socket();
    }
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      if (error) {
        *error = errno_text("socket");
      }
      return Socket();
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      if (error) {
        *error = errno_text(("connect " + endpoint.to_string()).c_str());
      }
      ::close(fd);
      return Socket();
    }
  }
  return Socket(fd);
}

}  // namespace fluxfp::netio
