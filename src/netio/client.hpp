#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "netio/socket.hpp"
#include "netio/wire.hpp"

namespace fluxfp::netio {

/// Blocking FXN1 client: one connection, strict request/reply. Every call
/// sends one frame and waits for the matching reply; on any failure —
/// transport, malformed reply, or a server ERROR frame — the call returns
/// false, last_error() explains, server_error() holds the typed ERROR
/// payload when the server sent one, and the connection is closed (the
/// server's ERROR contract is "typed reason, then close", so there is
/// nothing to salvage; reconnect to continue).
///
/// Used by stream_daemon's replay-to/query subcommands and by every
/// fluxfp_loadgen connection — the loadgen's drop/shed numbers are read
/// straight off these BatchAck/Metrics replies.
class Client {
 public:
  Client() = default;

  /// Connects and completes the HELLO/WELCOME handshake as `tenant`.
  /// `model` declares which observation model the readings belong to
  /// (core::ModelId values); the default 0 (flux) keeps the HELLO payload
  /// byte-identical to pre-model-tag clients.
  bool connect(const Endpoint& endpoint, std::uint32_t tenant,
               std::uint64_t token = 0, std::uint8_t model = 0);

  bool connected() const { return socket_.valid(); }

  /// The server's WELCOME (session count, connection id). Valid while
  /// connected.
  const WelcomeMsg& welcome() const { return welcome_; }

  /// Sends one EVENT_BATCH and fills the admission tallies from BATCH_ACK.
  bool send_batch(std::span<const stream::FluxEvent> events,
                  BatchAckMsg& ack);

  /// Quiesced estimate of one session.
  bool query_estimate(std::uint32_t user, EstimateMsg& out);

  /// The server's newest committed FLUXFPC1 checkpoint image.
  bool snapshot(std::string& image);

  /// Service metrics (quiesced events_processed, latency percentiles).
  bool metrics(MetricsMsg& out);

  /// Clean close: GOODBYE, wait for GOODBYE_OK, disconnect. False when
  /// the server was gone already (the connection is closed either way).
  bool goodbye();

  void close();

  /// Human-readable reason of the last failed call.
  const std::string& last_error() const { return last_error_; }

  /// The typed ERROR frame behind the last failure, when the server sent
  /// one (empty on transport-level failures).
  const std::optional<ErrorMsg>& server_error() const {
    return server_error_;
  }

 private:
  /// Sends `request` and reads the reply; true only when the reply has
  /// frame type `want`. Fills last_error_/server_error_ and closes on
  /// every failure path.
  bool roundtrip(FrameType type, const std::string& payload, FrameType want,
                 Frame& reply);
  bool fail(const std::string& why);

  Socket socket_;
  std::optional<FrameReader> reader_;
  WelcomeMsg welcome_;
  std::string last_error_;
  std::optional<ErrorMsg> server_error_;
};

}  // namespace fluxfp::netio
