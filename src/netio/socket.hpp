#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "netio/wire.hpp"

namespace fluxfp::netio {

/// Where a service listens / a client connects. Parsed from the CLI
/// address syntax shared by stream_daemon and fluxfp_loadgen:
///   "unix:/tmp/fluxfp.sock"  — Unix domain stream socket at that path
///   "tcp:HOST:PORT"          — TCP; HOST is an IPv4 literal or "localhost"
/// TCP port 0 asks the kernel for an ephemeral port; Listener reports the
/// resolved one (tests bind port 0 and read it back).
struct Endpoint {
  enum class Kind { kTcp, kUnix };
  Kind kind = Kind::kTcp;
  std::string host = "127.0.0.1";  ///< kTcp: IPv4 literal or "localhost"
  std::uint16_t port = 0;          ///< kTcp
  std::string path;                ///< kUnix: filesystem path

  /// Parses the address syntax above; on failure returns nullopt and, when
  /// `error` is non-null, a human-readable reason.
  static std::optional<Endpoint> parse(std::string_view spec,
                                       std::string* error = nullptr);

  /// Round-trips through parse(): "unix:PATH" / "tcp:HOST:PORT".
  std::string to_string() const;
};

/// RAII wrapper of one connected stream-socket fd — the ONLY place in the
/// tree (with Listener below) that issues raw socket syscalls; everything
/// above speaks ByteSource / write_all. Move-only; the destructor closes.
///
/// Reads and writes retry EINTR; writes suppress SIGPIPE (MSG_NOSIGNAL),
/// so a peer hanging up surfaces as a false return, never a signal.
/// shutdown_both() wakes a thread blocked in read_some() on ANOTHER thread
/// — that is how Server::stop() unsticks its connection threads.
class Socket final : public ByteSource {
 public:
  Socket() = default;
  /// Adopts an already-connected fd (Listener::accept_one, connect_to).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() override;

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// ByteSource: up to `n` bytes; > 0 read, 0 clean close, -1 error.
  long read_some(char* buf, std::size_t n) override;

  /// Writes all of `bytes`; false when the peer is gone or the socket
  /// failed (the connection is unusable afterwards).
  bool write_all(std::string_view bytes);

  /// Half-closes both directions without releasing the fd: any thread
  /// blocked in read_some() returns 0 promptly. Safe to call repeatedly
  /// and from a thread other than the reader.
  void shutdown_both();

  void close();

 private:
  int fd_ = -1;
};

/// RAII listening socket. listen_on() binds immediately (SO_REUSEADDR for
/// TCP; a stale Unix socket file at the path is unlinked first), so a
/// throw means the address is genuinely unusable. The destructor closes
/// and removes the Unix socket file it created.
class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens. Throws std::runtime_error (with errno text) when
  /// the endpoint cannot be bound.
  static Listener listen_on(const Endpoint& endpoint);

  bool valid() const { return fd_ >= 0; }

  /// The bound address with TCP port 0 resolved to the kernel's choice.
  const Endpoint& endpoint() const { return endpoint_; }

  /// Blocks for the next connection. Returns an invalid Socket once
  /// shutdown() was called (or on a non-transient accept failure) — the
  /// accept loop's exit signal.
  Socket accept_one();

  /// Wakes a thread blocked in accept_one() on another thread; every
  /// later accept_one() returns an invalid Socket.
  void shutdown();

 private:
  int fd_ = -1;
  Endpoint endpoint_;
  bool unlink_on_close_ = false;
};

/// Connects a blocking client socket to `endpoint`. Returns an invalid
/// Socket on failure and, when `error` is non-null, the reason.
Socket connect_to(const Endpoint& endpoint, std::string* error = nullptr);

}  // namespace fluxfp::netio
