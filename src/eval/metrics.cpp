#include "eval/metrics.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "net/flux.hpp"
#include "numeric/hungarian.hpp"
#include "numeric/stats.hpp"
#include "obs/instrument.hpp"

namespace fluxfp::eval {

std::vector<std::size_t> match_estimates(std::span<const geom::Vec2> estimates,
                                         std::span<const geom::Vec2> truths) {
  if (estimates.empty() || estimates.size() != truths.size()) {
    throw std::invalid_argument("match_estimates: bad sizes");
  }
  numeric::Matrix cost(estimates.size(), truths.size());
  for (std::size_t i = 0; i < estimates.size(); ++i) {
    for (std::size_t j = 0; j < truths.size(); ++j) {
      cost(i, j) = geom::distance(estimates[i], truths[j]);
    }
  }
  return numeric::hungarian_assign(cost);
}

std::vector<double> matched_errors(std::span<const geom::Vec2> estimates,
                                   std::span<const geom::Vec2> truths) {
  const std::vector<std::size_t> assign = match_estimates(estimates, truths);
  std::vector<double> errors(estimates.size());
  for (std::size_t i = 0; i < estimates.size(); ++i) {
    errors[i] = geom::distance(estimates[i], truths[assign[i]]);
  }
  return errors;
}

double matched_mean_error(std::span<const geom::Vec2> estimates,
                          std::span<const geom::Vec2> truths) {
  const std::vector<double> errors = matched_errors(estimates, truths);
  return numeric::mean(errors);
}

double matched_max_error(std::span<const geom::Vec2> estimates,
                         std::span<const geom::Vec2> truths) {
  const std::vector<double> errors = matched_errors(estimates, truths);
  return numeric::max_value(errors);
}

LatencySummary summarize_latencies(std::span<const double> samples) {
  // A kMissingReading that leaks into a latency feed is NaN: it would
  // poison the percentile sort and propagate into mean/max. Summarize the
  // finite subset and report how much was dropped.
  std::vector<double> finite;
  finite.reserve(samples.size());
  for (double v : samples) {
    if (!net::is_missing(v)) {
      finite.push_back(v);
    }
  }
  FLUXFP_OBS_COUNTER_ADD("fluxfp_eval_latency_nan_dropped_total",
                         "NaN samples dropped from latency summaries",
                         samples.size() - finite.size());
  LatencySummary s;
  s.count = finite.size();
  if (finite.empty()) {
    return s;
  }
  s.mean = numeric::mean(finite);
  s.p50 = numeric::percentile(finite, 0.5);
  s.p99 = numeric::percentile(finite, 0.99);
  s.max = numeric::max_value(finite);
  return s;
}

ErrorSummary summarize(std::span<const double> errors) {
  ErrorSummary s;
  s.count = errors.size();
  if (errors.empty()) {
    return s;
  }
  s.mean = numeric::mean(errors);
  s.stddev = numeric::stddev(errors);
  s.max = numeric::max_value(errors);
  return s;
}

}  // namespace fluxfp::eval
