#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fluxfp::eval {

/// A minimal typed key-value configuration used by the CLI example and the
/// experiment harnesses: flat `key = value` lines with `#` comments, plus
/// `--key value` / `--key=value` command-line overrides. No external
/// dependencies; values are stored as strings and converted on access.
class Config {
 public:
  Config() = default;

  /// Parses `key = value` lines; '#' starts a comment (also mid-line),
  /// blank lines are skipped. Later keys override earlier ones. Throws
  /// std::runtime_error on a line without '='.
  static Config parse_stream(std::istream& is);

  /// parse_stream over a file; throws std::runtime_error if unreadable.
  static Config parse_file(const std::string& path);

  /// Parses `--key value` and `--key=value` arguments (argv[0] ignored).
  /// A trailing `--key` without value is stored as "true" (boolean flag).
  /// Non-option arguments are collected into positional().
  static Config parse_args(int argc, const char* const* argv);

  /// Merges `overrides` into this config (overrides win).
  void merge(const Config& overrides);

  bool has(const std::string& key) const;
  void set(const std::string& key, std::string value);

  /// Typed getters: return `fallback` when the key is absent; throw
  /// std::runtime_error when present but not convertible.
  std::string get_string(const std::string& key,
                         const std::string& fallback = "") const;
  double get_double(const std::string& key, double fallback) const;
  long get_int(const std::string& key, long fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// All keys, sorted.
  std::vector<std::string> keys() const;
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace fluxfp::eval
