#include "eval/models.hpp"

#include <stdexcept>

namespace fluxfp::eval {

std::vector<core::Site> point_sites(std::span<const geom::Vec2> positions) {
  std::vector<core::Site> sites;
  sites.reserve(positions.size());
  for (geom::Vec2 p : positions) {
    sites.push_back(core::point_site(p));
  }
  return sites;
}

std::vector<core::Site> link_sites(const net::UnitDiskGraph& graph,
                                   std::span<const net::Link> links) {
  std::vector<core::Site> sites;
  sites.reserve(links.size());
  for (const net::Link& l : links) {
    if (l.a >= graph.size() || l.b >= graph.size()) {
      throw std::invalid_argument("link_sites: endpoint out of range");
    }
    sites.push_back(core::Site{graph.position(l.a), graph.position(l.b)});
  }
  return sites;
}

std::vector<double> forward_readings(const core::ObservationModel& model,
                                     std::span<const core::Site> sites,
                                     std::span<const geom::Vec2> users,
                                     std::span<const double> stretches) {
  if (users.size() != stretches.size()) {
    throw std::invalid_argument(
        "forward_readings: users/stretches size mismatch");
  }
  std::vector<double> readings(sites.size(), 0.0);
  for (std::size_t j = 0; j < users.size(); ++j) {
    for (std::size_t i = 0; i < sites.size(); ++i) {
      readings[i] += stretches[j] * model.site_shape(users[j], sites[i]);
    }
  }
  return readings;
}

}  // namespace fluxfp::eval
