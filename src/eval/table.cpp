#include "eval/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fluxfp::eval {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: no headers");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: wrong cell count");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) {
    total += w + 2;
  }
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

namespace {

void write_csv_cell(std::ostream& os, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    os << cell;
    return;
  }
  os << '"';
  for (char c : cell) {
    if (c == '"') {
      os << '"';
    }
    os << c;
  }
  os << '"';
}

}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto write_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) {
        os << ',';
      }
      write_csv_cell(os, cells[c]);
    }
    os << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) {
    write_row(row);
  }
}

std::string Table::fmt(double v, int precision) {
  // Pin the non-finite tokens: iostream prints "-nan"/"nan(...)" depending
  // on the platform and the NaN's sign bit, which breaks CSV diffing of
  // benchmark output across machines. One spelling each, always.
  if (std::isnan(v)) {
    return "nan";
  }
  if (std::isinf(v)) {
    return v > 0 ? "inf" : "-inf";
  }
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace fluxfp::eval
