#include "eval/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fluxfp::eval {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    --e;
  }
  return s.substr(b, e - b);
}

}  // namespace

Config Config::parse_stream(std::istream& is) {
  Config cfg;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    const std::string trimmed = trim(line);
    if (trimmed.empty()) {
      continue;
    }
    const std::size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("Config: missing '=' on line " +
                               std::to_string(lineno));
    }
    const std::string key = trim(trimmed.substr(0, eq));
    const std::string value = trim(trimmed.substr(eq + 1));
    if (key.empty()) {
      throw std::runtime_error("Config: empty key on line " +
                               std::to_string(lineno));
    }
    cfg.values_[key] = value;
  }
  return cfg;
}

Config Config::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("Config: cannot open " + path);
  }
  return parse_stream(in);
}

Config Config::parse_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      cfg.positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      cfg.values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc &&
               std::string(argv[i + 1]).rfind("--", 0) != 0) {
      cfg.values_[body] = argv[++i];
    } else {
      cfg.values_[body] = "true";
    }
  }
  return cfg;
}

void Config::merge(const Config& overrides) {
  for (const auto& [k, v] : overrides.values_) {
    values_[k] = v;
  }
  positional_.insert(positional_.end(), overrides.positional_.begin(),
                     overrides.positional_.end());
}

bool Config::has(const std::string& key) const {
  return values_.count(key) > 0;
}

void Config::set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) {
      throw std::invalid_argument("trailing characters");
    }
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("Config: key '" + key + "' is not a number: " +
                             it->second);
  }
}

long Config::get_int(const std::string& key, long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  try {
    std::size_t pos = 0;
    const long v = std::stol(it->second, &pos);
    if (pos != it->second.size()) {
      throw std::invalid_argument("trailing characters");
    }
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("Config: key '" + key +
                             "' is not an integer: " + it->second);
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (v == "1" || v == "true" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "0" || v == "false" || v == "no" || v == "off") {
    return false;
  }
  throw std::runtime_error("Config: key '" + key +
                           "' is not a boolean: " + it->second);
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) {
    out.push_back(k);
  }
  return out;
}

}  // namespace fluxfp::eval
