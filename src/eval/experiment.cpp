#include "eval/experiment.hpp"

#include <stdexcept>

#include "net/routing.hpp"
#include "numeric/parallel.hpp"
#include "sim/sniffer.hpp"

namespace fluxfp::eval {

net::UnitDiskGraph build_connected_network(const NetworkSpec& spec,
                                           const geom::Field& field,
                                           geom::Rng& rng, int max_tries) {
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    net::UnitDiskGraph graph(net::deploy(spec.kind, field, spec.nodes, rng),
                             spec.radius);
    if (graph.is_connected()) {
      return graph;
    }
  }
  throw std::runtime_error(
      "build_connected_network: no connected deployment found; raise the "
      "radius or node count");
}

double estimate_d_min(const net::UnitDiskGraph& graph,
                      const geom::Field& field, geom::Rng& rng) {
  const net::CollectionTree probe =
      net::build_collection_tree(graph, field.center(), rng);
  const double r = net::average_hop_length(graph, probe);
  // Half the average hop length keeps the near-sink model prediction sharp
  // (a tight clamp blurs the objective's peak and widens the top-M cluster)
  // while still bounding the 1/d divergence. Fall back to a quarter of the
  // communication radius for degenerate graphs.
  return r > 0.0 ? 0.5 * r : graph.radius() / 4.0;
}

core::SparseObjective make_objective(const core::ObservationModel& model,
                                     const net::UnitDiskGraph& graph,
                                     const net::FluxMap& flux,
                                     std::span<const std::size_t> samples,
                                     bool smooth) {
  std::vector<geom::Vec2> positions;
  positions.reserve(samples.size());
  for (std::size_t i : samples) {
    positions.push_back(graph.position(i));
  }
  return core::SparseObjective(
      model, std::move(positions),
      net::gather_readings(graph, flux, samples, smooth));
}

std::vector<double> sniffed_readings(const net::UnitDiskGraph& graph,
                                     const net::FluxMap& flux,
                                     std::span<const std::size_t> samples,
                                     bool smooth) {
  return net::gather_readings(graph, flux, samples, smooth);
}

core::SparseObjective make_objective_from_readings(
    const core::ObservationModel& model, const net::UnitDiskGraph& graph,
    std::span<const std::size_t> samples, std::vector<double> readings) {
  std::vector<geom::Vec2> positions;
  positions.reserve(samples.size());
  for (std::size_t i : samples) {
    positions.push_back(graph.position(i));
  }
  return core::SparseObjective(model, std::move(positions),
                               std::move(readings));
}

std::uint64_t derive_seed(std::uint64_t base,
                          std::initializer_list<std::uint64_t> salts) {
  // SplitMix64-style mixing.
  std::uint64_t h = base + 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t s : salts) {
    h += s + 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    h = h ^ (h >> 31);
  }
  return h;
}

std::vector<double> run_trials(
    std::size_t count, const std::function<double(std::size_t)>& trial) {
  std::vector<double> results(count);
  numeric::parallel_for(0, count,
                        [&](std::size_t t) { results[t] = trial(t); });
  return results;
}

}  // namespace fluxfp::eval
