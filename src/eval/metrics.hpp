#pragma once

#include <span>
#include <vector>

#include "geom/vec2.hpp"

namespace fluxfp::eval {

/// Identity-free multi-target matching: minimum-cost perfect assignment of
/// estimates to true positions under Euclidean distance. The paper scores
/// positions irrespective of identity (identities may legitimately swap
/// when trajectories cross, Fig. 7(d)).
std::vector<std::size_t> match_estimates(std::span<const geom::Vec2> estimates,
                                         std::span<const geom::Vec2> truths);

/// Mean matched distance. Throws std::invalid_argument on size mismatch or
/// empty inputs.
double matched_mean_error(std::span<const geom::Vec2> estimates,
                          std::span<const geom::Vec2> truths);

/// Maximum matched distance.
double matched_max_error(std::span<const geom::Vec2> estimates,
                         std::span<const geom::Vec2> truths);

/// All matched distances, indexed by estimate.
std::vector<double> matched_errors(std::span<const geom::Vec2> estimates,
                                   std::span<const geom::Vec2> truths);

/// Summary statistics of a sample of errors.
struct ErrorSummary {
  double mean = 0.0;
  double stddev = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

ErrorSummary summarize(std::span<const double> errors);

/// Tail-latency summary of a per-operation cost sample (the streaming
/// runtime reports per-epoch filter latencies through this). Unit-agnostic;
/// zeroed for an empty sample. NaN samples (a missing-reading sentinel
/// leaking into a latency feed) are dropped before summarizing — `count` is
/// the number of finite samples actually ranked.
struct LatencySummary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

LatencySummary summarize_latencies(std::span<const double> samples);

}  // namespace fluxfp::eval
