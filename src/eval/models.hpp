#pragma once

#include <span>
#include <vector>

#include "core/observation_model.hpp"
#include "geom/vec2.hpp"
#include "net/graph.hpp"
#include "net/links.hpp"

namespace fluxfp::eval {

/// Point sites (b == a) from sniffer positions — the site list every
/// point-backend harness hands to SparseObjective / StreamTracker.
std::vector<core::Site> point_sites(std::span<const geom::Vec2> positions);

/// Link sites from graph geometry: site i is the endpoint pair of
/// links[i]. Throws std::invalid_argument on an out-of-range endpoint.
std::vector<core::Site> link_sites(const net::UnitDiskGraph& graph,
                                   std::span<const net::Link> links);

/// Noise-free forward readings of any backend: reading_i =
/// sum_j stretches[j] * site_shape(users[j], sites[i]) — the linear
/// predicted measurement the NLS objective inverts. Lives in eval (not
/// sim) because forward generation needs the core model layer. Throws
/// std::invalid_argument on a users/stretches size mismatch.
std::vector<double> forward_readings(const core::ObservationModel& model,
                                     std::span<const core::Site> sites,
                                     std::span<const geom::Vec2> users,
                                     std::span<const double> stretches);

}  // namespace fluxfp::eval
