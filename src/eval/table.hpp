#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fluxfp::eval {

/// A fixed-width plain-text table for the experiment harnesses: the bench
/// binaries print the same rows/series the paper's figures report.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header rule.
  void print(std::ostream& os) const;

  /// Writes the table as CSV (header + rows). Cells containing commas or
  /// quotes are quoted per RFC 4180.
  void write_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

  /// Formats a double with fixed precision.
  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== title ==") used to delimit experiments in
/// bench output.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace fluxfp::eval
