#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/nls.hpp"
#include "geom/field.hpp"
#include "geom/sampling.hpp"
#include "net/deployment.hpp"
#include "net/flux.hpp"
#include "net/graph.hpp"

namespace fluxfp::eval {

/// The paper's standard simulation setting (§5.A): 900 nodes on a 30 x 30
/// field in perturbed grids, communication radius 2.4 (average degree 18).
struct NetworkSpec {
  net::DeploymentKind kind = net::DeploymentKind::kPerturbedGrid;
  std::size_t nodes = 900;
  double radius = 2.4;
};

/// Deploys a network per `spec` and retries (up to `max_tries` fresh
/// deployments) until the communication graph is connected. Throws
/// std::runtime_error when no connected deployment is found.
net::UnitDiskGraph build_connected_network(const NetworkSpec& spec,
                                           const geom::Field& field,
                                           geom::Rng& rng, int max_tries = 20);

/// Estimates the flux model's distance clamp d_min ~ the average hop length
/// r, by probing one collection tree rooted at the field center.
double estimate_d_min(const net::UnitDiskGraph& graph,
                      const geom::Field& field, geom::Rng& rng);

/// Builds the sparse NLS objective from a window's flux map and a set of
/// sniffed node indices. With `smooth` (the default), readings are the
/// 1-hop neighborhood averages of the flux map — §3.B's smoothing, which
/// both damps tree-construction randomness and matches what a passive
/// sniffer physically overhears (every transmission in its radio range).
core::SparseObjective make_objective(const core::ObservationModel& model,
                                     const net::UnitDiskGraph& graph,
                                     const net::FluxMap& flux,
                                     std::span<const std::size_t> samples,
                                     bool smooth = true);

/// The raw reading vector make_objective would fit (smoothed flux gathered
/// at `samples`). Split out so fault injection (sim::FaultInjector::corrupt)
/// can corrupt the readings between gathering and objective construction.
std::vector<double> sniffed_readings(const net::UnitDiskGraph& graph,
                                     const net::FluxMap& flux,
                                     std::span<const std::size_t> samples,
                                     bool smooth = true);

/// Builds the objective from pre-gathered (possibly fault-corrupted)
/// readings; missing readings (net::kMissingReading) are masked out by the
/// objective itself.
core::SparseObjective make_objective_from_readings(
    const core::ObservationModel& model, const net::UnitDiskGraph& graph,
    std::span<const std::size_t> samples, std::vector<double> readings);

/// Deterministic per-experiment seed derivation: combines a base seed with
/// salt values (trial index, sweep value, ...) so experiments are
/// reproducible yet decorrelated.
std::uint64_t derive_seed(std::uint64_t base,
                          std::initializer_list<std::uint64_t> salts);

/// Runs `trial(t)` for t in [0, count) and returns the results in trial
/// order. Trials fan out over the process thread pool (numeric::parallel_for
/// — set FLUXFP_THREADS or numeric::set_thread_count), so `trial` must be
/// self-contained: seed its own Rng from the trial index (derive_seed) and
/// touch no shared mutable state. Because every trial owns its seed and
/// slot t holds trial t's result, the returned vector — and any statistic
/// aggregated from it in order — is bit-identical at any thread count.
std::vector<double> run_trials(std::size_t count,
                               const std::function<double(std::size_t)>& trial);

}  // namespace fluxfp::eval
