#include "sim/mobility.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fluxfp::sim {

PathMobility::PathMobility(geom::Polyline path, double speed,
                           double start_time)
    : path_(std::move(path)), speed_(speed), start_time_(start_time) {
  if (path_.empty()) {
    throw std::invalid_argument("PathMobility: empty path");
  }
  if (!(speed >= 0.0)) {
    throw std::invalid_argument("PathMobility: negative speed");
  }
}

geom::Vec2 PathMobility::position_at(double time) const {
  const double s = std::max(0.0, time - start_time_) * speed_;
  return path_.at_arclength(s);
}

RandomWaypointMobility::RandomWaypointMobility(const geom::Field& field,
                                               double speed, double duration,
                                               geom::Rng& rng)
    : speed_(speed) {
  if (!(speed > 0.0) || !(duration >= 0.0)) {
    throw std::invalid_argument("RandomWaypointMobility: bad speed/duration");
  }
  const double needed = speed * duration;
  path_.push_back(geom::uniform_in_field(field, rng));
  while (path_.length() < needed) {
    path_.push_back(geom::uniform_in_field(field, rng));
  }
}

geom::Vec2 RandomWaypointMobility::position_at(double time) const {
  return path_.at_arclength(std::max(0.0, time) * speed_);
}

GaussMarkovMobility::GaussMarkovMobility(const geom::Field& field,
                                         geom::Vec2 start, double mean_speed,
                                         double memory, double sigma,
                                         double step_dt, double duration,
                                         geom::Rng& rng)
    : step_dt_(step_dt) {
  if (!(step_dt > 0.0) || memory < 0.0 || memory >= 1.0 ||
      !(mean_speed >= 0.0) || sigma < 0.0) {
    throw std::invalid_argument("GaussMarkovMobility: bad parameters");
  }
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::uniform_real_distribution<double> angle(0.0, 2.0 * 3.14159265358979);
  const double a0 = angle(rng);
  // Mean velocity: a random fixed heading at mean_speed.
  const geom::Vec2 v_mean{mean_speed * std::cos(a0),
                          mean_speed * std::sin(a0)};
  geom::Vec2 v = v_mean;
  geom::Vec2 cur = field.clamp(start);
  path_.push_back(cur);
  const double noise = sigma * std::sqrt(1.0 - memory * memory);
  const auto steps = static_cast<std::size_t>(std::ceil(duration / step_dt));
  for (std::size_t i = 0; i < steps; ++i) {
    v = v * memory + v_mean * (1.0 - memory) +
        geom::Vec2{noise * gauss(rng), noise * gauss(rng)};
    cur = field.clamp(cur + v * step_dt);
    path_.push_back(cur);
  }
}

geom::Vec2 GaussMarkovMobility::position_at(double time) const {
  if (path_.size() == 1) {
    return path_.points().front();
  }
  const double steps = std::max(0.0, time) / step_dt_;
  const double max_steps = static_cast<double>(path_.size() - 1);
  const double clamped = std::min(steps, max_steps);
  const auto i = static_cast<std::size_t>(clamped);
  if (i + 1 >= path_.size()) {
    return path_.points().back();
  }
  return geom::lerp(path_.points()[i], path_.points()[i + 1],
                    clamped - static_cast<double>(i));
}

RandomWalkMobility::RandomWalkMobility(const geom::Field& field,
                                       geom::Vec2 start, double step_radius,
                                       double step_dt, double duration,
                                       geom::Rng& rng)
    : step_dt_(step_dt) {
  if (!(step_dt > 0.0) || !(step_radius >= 0.0)) {
    throw std::invalid_argument("RandomWalkMobility: bad step parameters");
  }
  geom::Vec2 cur = field.clamp(start);
  path_.push_back(cur);
  const auto steps = static_cast<std::size_t>(std::ceil(duration / step_dt));
  for (std::size_t i = 0; i < steps; ++i) {
    cur = geom::uniform_in_disc_clipped(cur, step_radius, field, rng);
    path_.push_back(cur);
  }
}

geom::Vec2 RandomWalkMobility::position_at(double time) const {
  if (path_.size() == 1) {
    return path_.points().front();
  }
  const double steps = std::max(0.0, time) / step_dt_;
  const double max_steps = static_cast<double>(path_.size() - 1);
  const double clamped = std::min(steps, max_steps);
  const auto i = static_cast<std::size_t>(clamped);
  if (i + 1 >= path_.size()) {
    return path_.points().back();
  }
  return geom::lerp(path_.points()[i], path_.points()[i + 1], clamped -
                    static_cast<double>(i));
}

}  // namespace fluxfp::sim
