#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/sampling.hpp"
#include "net/flux.hpp"
#include "net/graph.hpp"
#include "stream/event.hpp"

namespace fluxfp::sim {

/// Fault taxonomy (see DESIGN.md "Fault model & graceful degradation"):
///  * node crash      — a sensor dies permanently; it relays nothing and
///                      disappears from the communication graph before flux
///                      generation.
///  * sniffer outage  — a passive sniffer misses a whole window; its reading
///                      for that round is missing (net::kMissingReading).
///  * byzantine       — a sniffer reports corrupted values (stuck amplifier,
///                      compromised device): readings scaled by a gain.
///  * burst loss      — every sniffer goes dark for a contiguous run of
///                      rounds (backhaul outage / jamming).
enum class FaultKind { kNodeCrash, kSnifferOutage, kByzantine, kBurstLoss };

/// Declarative, seeded fault schedule. All randomness is derived from
/// `seed` (crash/byzantine sets once, outage draws per round), so a plan
/// replays identically regardless of how often the injector is queried.
struct FaultPlan {
  std::uint64_t seed = 0;

  /// Fraction of nodes that crash permanently, taking effect at
  /// `crash_round` (inclusive).
  double crash_fraction = 0.0;
  int crash_round = 0;

  /// Per-sniffer, per-round probability of missing the window entirely.
  double outage_prob = 0.0;

  /// Fraction of sniffers that are permanently byzantine; their readings
  /// are multiplied by `byzantine_gain`.
  double byzantine_fraction = 0.0;
  double byzantine_gain = 5.0;

  /// Total sniffer blackout for rounds in [burst_start, burst_start +
  /// burst_length). burst_start < 0 disables the burst.
  int burst_start = -1;
  int burst_length = 0;
};

/// The original graph restricted to nodes that survived a crash set,
/// with index maps in both directions. `from_original[i]` is
/// net::kNoNode for crashed nodes.
struct SurvivingNetwork {
  net::UnitDiskGraph graph;
  std::vector<std::size_t> to_original;
  std::vector<std::size_t> from_original;
};

/// Builds the surviving subnetwork after removing `crashed` (sorted or
/// not; duplicates ignored). The result may be disconnected — collection
/// trees over it degrade to partial flux rather than failing. Throws
/// std::invalid_argument when every node crashed.
SurvivingNetwork surviving_network(const net::UnitDiskGraph& original,
                                   std::span<const std::size_t> crashed);

/// Expands a flux map over the surviving graph back to the original node
/// indexing. Crashed nodes carry 0 — a dead node genuinely transmits
/// nothing, so its *flux* is a true zero (unlike a sniffer outage, where
/// the reading is missing).
net::FluxMap expand_to_original(const SurvivingNetwork& surviving,
                                const net::FluxMap& surviving_flux);

/// Deterministically schedules and applies the faults of a FaultPlan
/// against one network + sniffer set over a sequence of rounds. Composable
/// with FluxNoise (apply noise to the flux map first, then corrupt the
/// gathered readings) and with the packet-level simulator (run it over the
/// surviving network's trees).
class FaultInjector {
 public:
  /// `sniffers` are original-graph node indices. The crash and byzantine
  /// sets are drawn immediately from plan.seed; per-round outage draws use
  /// an independent stream per round.
  FaultInjector(FaultPlan plan, std::size_t num_nodes,
                std::vector<std::size_t> sniffers);

  /// Advances the injector to `round` (any order is allowed; the fault
  /// draws depend only on the round number and the plan seed).
  void begin_round(int round);
  int round() const { return round_; }

  /// Nodes crashed as of the current round (sorted original indices;
  /// empty before crash_round).
  const std::vector<std::size_t>& crashed() const;
  bool node_alive(std::size_t node) const;
  bool burst_active() const;

  /// Applies this round's sniffer-level faults in place to readings
  /// gathered at the injector's sniffer set (same order): burst/outage and
  /// crashed-node sniffers become missing, byzantine sniffers are scaled.
  /// Throws std::invalid_argument on a size mismatch.
  void corrupt(std::vector<double>& readings) const;

  const std::vector<std::size_t>& sniffers() const { return sniffers_; }
  /// Per-sniffer-slot byzantine flags (aligned with sniffers()).
  const std::vector<bool>& byzantine() const { return byzantine_; }

  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  std::size_t num_nodes_;
  std::vector<std::size_t> sniffers_;
  std::vector<std::size_t> crash_set_;  ///< drawn once; active from crash_round
  std::vector<bool> crashed_now_;       ///< per node, at the current round
  std::vector<std::size_t> crashed_list_;
  std::vector<bool> byzantine_;         ///< per sniffer slot
  std::vector<bool> outage_;            ///< per sniffer slot, this round
  int round_ = 0;
};

/// Event-level faults for the streaming runtime: the transport between the
/// sniffers and the tracking service drops, duplicates, delays, and
/// reorders individual reading reports. Complements the reading-level
/// FaultPlan (which corrupts *values*): these faults corrupt *delivery*.
/// All randomness derives from `seed`, per event in input order, so a plan
/// applied to the same event sequence is always the same fault pattern.
struct EventFaultPlan {
  std::uint64_t seed = 0;

  /// Per-event probability the report is lost entirely.
  double drop_prob = 0.0;

  /// Per-event probability the report is delivered twice (the duplicate
  /// arrives `dup_delay` later in event time — usually still inside its
  /// window, exercising the tracker's keep-latest folding).
  double dup_prob = 0.0;
  double dup_delay = 0.1;

  /// Per-event probability the report straggles: delivery is delayed by
  /// `late_delay` in event time. With late_delay beyond the tracker's
  /// close_delay the event arrives after its window fired and must be
  /// counted + dropped as late.
  double late_prob = 0.0;
  double late_delay = 2.0;

  /// Uniform [0, jitter) delivery perturbation applied to every surviving
  /// event — out-of-order arrival within a window.
  double jitter = 0.0;
};

/// Applies `plan` to a time-ordered event sequence and returns the events
/// in DELIVERY order (what the ingestion queue sees). Event timestamps are
/// left untouched — lateness and reordering are expressed purely through
/// sequence position, mirroring a transport that delays packets without
/// rewriting them.
std::vector<stream::FluxEvent> apply_event_faults(
    std::span<const stream::FluxEvent> events, const EventFaultPlan& plan);

/// Process-level fault for the supervised streaming runtime (see
/// stream/supervisor.hpp): the tracking shard is killed — every piece of
/// in-memory state since the last checkpoint lost — on a schedule over
/// *virtual progress* (total fired epochs), never wall clock, so a
/// fault-injected run replays identically at any speed or worker layout.
struct ShardCrashPlan {
  /// Kill the shard each time total fired epochs reach the next multiple
  /// of this. 0 disables crash injection.
  std::uint32_t crash_every_epochs = 0;
  /// Cap on injected crashes; 0 = unlimited.
  std::uint32_t max_crashes = 0;

  /// True when, after `crashes_so_far` kills, `epochs_fired` has reached
  /// the next scheduled kill point.
  bool should_crash(std::uint64_t epochs_fired,
                    std::uint64_t crashes_so_far) const;
};

}  // namespace fluxfp::sim
