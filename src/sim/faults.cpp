#include "sim/faults.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/sniffer.hpp"

namespace fluxfp::sim {

namespace {

/// SplitMix64-style mix of the plan seed with a round/stream tag, so every
/// round gets an independent deterministic RNG stream.
std::uint64_t mix_seed(std::uint64_t base, std::uint64_t salt) {
  std::uint64_t h = base + 0x9e3779b97f4a7c15ULL * (salt + 1);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

/// Draws floor/ceil(fraction * n) distinct indices from [0, n).
std::vector<std::size_t> draw_fraction(std::size_t n, double fraction,
                                       geom::Rng& rng) {
  if (fraction <= 0.0 || n == 0) {
    return {};
  }
  const auto count = std::min(
      n, static_cast<std::size_t>(fraction * static_cast<double>(n) + 0.5));
  if (count == 0) {
    return {};
  }
  return sample_nodes(n, count, rng);
}

}  // namespace

SurvivingNetwork surviving_network(const net::UnitDiskGraph& original,
                                   std::span<const std::size_t> crashed) {
  std::vector<bool> dead(original.size(), false);
  for (std::size_t i : crashed) {
    if (i >= original.size()) {
      throw std::invalid_argument("surviving_network: node out of range");
    }
    dead[i] = true;
  }
  std::vector<geom::Vec2> positions;
  std::vector<std::size_t> to_original;
  std::vector<std::size_t> from_original(original.size(), net::kNoNode);
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (dead[i]) {
      continue;
    }
    from_original[i] = to_original.size();
    to_original.push_back(i);
    positions.push_back(original.position(i));
  }
  if (positions.empty()) {
    throw std::invalid_argument("surviving_network: every node crashed");
  }
  return {net::UnitDiskGraph(std::move(positions), original.radius()),
          std::move(to_original), std::move(from_original)};
}

net::FluxMap expand_to_original(const SurvivingNetwork& surviving,
                                const net::FluxMap& surviving_flux) {
  if (surviving_flux.size() != surviving.graph.size()) {
    throw std::invalid_argument("expand_to_original: size mismatch");
  }
  net::FluxMap out(surviving.from_original.size(), 0.0);
  for (std::size_t s = 0; s < surviving_flux.size(); ++s) {
    out[surviving.to_original[s]] = surviving_flux[s];
  }
  return out;
}

FaultInjector::FaultInjector(FaultPlan plan, std::size_t num_nodes,
                             std::vector<std::size_t> sniffers)
    : plan_(plan), num_nodes_(num_nodes), sniffers_(std::move(sniffers)) {
  if (num_nodes_ == 0) {
    throw std::invalid_argument("FaultInjector: empty network");
  }
  for (std::size_t s : sniffers_) {
    if (s >= num_nodes_) {
      throw std::invalid_argument("FaultInjector: sniffer out of range");
    }
  }
  if (plan_.crash_fraction < 0.0 || plan_.crash_fraction > 1.0 ||
      plan_.outage_prob < 0.0 || plan_.outage_prob > 1.0 ||
      plan_.byzantine_fraction < 0.0 || plan_.byzantine_fraction > 1.0) {
    throw std::invalid_argument("FaultInjector: fractions must be in [0,1]");
  }
  {
    geom::Rng rng(mix_seed(plan_.seed, 0xc4a5));
    crash_set_ = draw_fraction(num_nodes_, plan_.crash_fraction, rng);
    // Never crash the whole network: keep at least one survivor.
    if (crash_set_.size() == num_nodes_) {
      crash_set_.pop_back();
    }
  }
  {
    geom::Rng rng(mix_seed(plan_.seed, 0xb12a));
    byzantine_.assign(sniffers_.size(), false);
    for (std::size_t slot :
         draw_fraction(sniffers_.size(), plan_.byzantine_fraction, rng)) {
      byzantine_[slot] = true;
    }
  }
  crashed_now_.assign(num_nodes_, false);
  outage_.assign(sniffers_.size(), false);
  begin_round(0);
}

void FaultInjector::begin_round(int round) {
  round_ = round;
  const bool crashes_active = round_ >= plan_.crash_round;
  crashed_list_.clear();
  std::fill(crashed_now_.begin(), crashed_now_.end(), false);
  if (crashes_active) {
    for (std::size_t i : crash_set_) {
      crashed_now_[i] = true;
    }
    crashed_list_ = crash_set_;
  }
  std::fill(outage_.begin(), outage_.end(), false);
  if (plan_.outage_prob > 0.0) {
    geom::Rng rng(
        mix_seed(plan_.seed, 0x07abu + static_cast<std::uint64_t>(round)));
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (std::size_t slot = 0; slot < sniffers_.size(); ++slot) {
      outage_[slot] = unit(rng) < plan_.outage_prob;
    }
  }
}

const std::vector<std::size_t>& FaultInjector::crashed() const {
  return crashed_list_;
}

bool FaultInjector::node_alive(std::size_t node) const {
  if (node >= num_nodes_) {
    throw std::invalid_argument("node_alive: node out of range");
  }
  return !crashed_now_[node];
}

bool FaultInjector::burst_active() const {
  return plan_.burst_start >= 0 && round_ >= plan_.burst_start &&
         round_ < plan_.burst_start + plan_.burst_length;
}

void FaultInjector::corrupt(std::vector<double>& readings) const {
  if (readings.size() != sniffers_.size()) {
    throw std::invalid_argument("corrupt: readings/sniffer size mismatch");
  }
  const bool burst = burst_active();
  for (std::size_t slot = 0; slot < readings.size(); ++slot) {
    if (burst || outage_[slot] || crashed_now_[sniffers_[slot]]) {
      readings[slot] = net::kMissingReading;
      continue;
    }
    if (byzantine_[slot] && !net::is_missing(readings[slot])) {
      readings[slot] *= plan_.byzantine_gain;
    }
  }
}

std::vector<stream::FluxEvent> apply_event_faults(
    std::span<const stream::FluxEvent> events, const EventFaultPlan& plan) {
  geom::Rng rng(plan.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  // Delivery-order key per surviving event. Four draws per input event in
  // a fixed sequence keep the fault pattern a pure function of (seed,
  // event index) — independent of earlier outcomes.
  struct Delivery {
    stream::FluxEvent event;
    double arrival;
  };
  std::vector<Delivery> deliveries;
  deliveries.reserve(events.size());
  for (const stream::FluxEvent& e : events) {
    const double u_drop = unit(rng);
    const double u_late = unit(rng);
    const double u_jitter = unit(rng);
    const double u_dup = unit(rng);
    if (u_drop < plan.drop_prob) {
      continue;
    }
    double arrival = e.time + u_jitter * plan.jitter;
    if (u_late < plan.late_prob) {
      arrival += plan.late_delay;
    }
    deliveries.push_back({e, arrival});
    if (u_dup < plan.dup_prob) {
      deliveries.push_back({e, arrival + plan.dup_delay});
    }
  }
  std::stable_sort(deliveries.begin(), deliveries.end(),
                   [](const Delivery& a, const Delivery& b) {
                     return a.arrival < b.arrival;
                   });
  std::vector<stream::FluxEvent> out;
  out.reserve(deliveries.size());
  for (const Delivery& d : deliveries) {
    out.push_back(d.event);
  }
  return out;
}

bool ShardCrashPlan::should_crash(std::uint64_t epochs_fired,
                                  std::uint64_t crashes_so_far) const {
  if (crash_every_epochs == 0) {
    return false;
  }
  if (max_crashes != 0 && crashes_so_far >= max_crashes) {
    return false;
  }
  return epochs_fired >= static_cast<std::uint64_t>(crash_every_epochs) *
                             (crashes_so_far + 1);
}

}  // namespace fluxfp::sim
