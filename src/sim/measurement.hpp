#pragma once

#include <span>
#include <vector>

#include "geom/sampling.hpp"
#include "net/flux.hpp"
#include "net/graph.hpp"

namespace fluxfp::sim {

/// One data collection initiated inside a measurement window: a mobile sink
/// at `position` pulls data over a fresh collection tree with traffic
/// stretch `stretch`.
struct Collection {
  std::size_t user = 0;
  geom::Vec2 position;
  double stretch = 1.0;
};

/// Multiplicative-noise model for sniffed flux readings: each node's value
/// is scaled by (1 + eps) with eps ~ N(0, relative_sigma), floored at 0,
/// and dropped with probability `dropout_prob` — modeling a sniffer that
/// missed the whole window. A dropped reading becomes net::kMissingReading
/// (NOT zero): a missed observation carries no evidence, while a literal 0
/// would be fitted as a trusted zero-flux measurement and silently bias the
/// NLS/SMC estimates toward the failed sniffers.
struct FluxNoise {
  double relative_sigma = 0.0;
  double dropout_prob = 0.0;
};

/// Produces ground-truth network flux for the collections falling into one
/// observation window ΔT. Each collection builds its own randomized
/// shortest-path tree; per-node amounts cumulate (§3.A: F = Σ F_i).
class FluxEngine {
 public:
  /// `graph` must outlive the engine.
  explicit FluxEngine(const net::UnitDiskGraph& graph) : graph_(&graph) {}

  /// Flux map for the given window's collections (empty map of zeros when
  /// no user collected in the window).
  net::FluxMap measure(std::span<const Collection> collections,
                       geom::Rng& rng) const;

  /// Applies `noise` in place.
  static void apply_noise(net::FluxMap& flux, const FluxNoise& noise,
                          geom::Rng& rng);

  const net::UnitDiskGraph& graph() const { return *graph_; }

  /// Empirical average hop length of the last measured window's trees
  /// (mean over collections); 0 before the first measure() call with a
  /// non-empty window. Exposed so experiments can report the `r` that the
  /// s/r factor folds away.
  double last_average_hop_length() const { return last_hop_length_; }

 private:
  const net::UnitDiskGraph* graph_;
  mutable double last_hop_length_ = 0.0;
};

}  // namespace fluxfp::sim
