#pragma once

#include <span>
#include <vector>

#include "geom/sampling.hpp"
#include "net/flux.hpp"
#include "net/graph.hpp"

namespace fluxfp::sim {

/// Picks `count` distinct sniffed node indices uniformly from n nodes.
/// Throws std::invalid_argument if count > n.
std::vector<std::size_t> sample_nodes(std::size_t n, std::size_t count,
                                      geom::Rng& rng);

/// Picks ceil(fraction * n) distinct node indices (fraction in (0,1]).
std::vector<std::size_t> sample_nodes_fraction(std::size_t n, double fraction,
                                               geom::Rng& rng);

/// Reads the flux values at the sniffed nodes, in the order given.
std::vector<double> gather(const net::FluxMap& flux,
                           std::span<const std::size_t> nodes);

/// Spatially stratified sniffer placement: the node positions' bounding
/// box is divided into ~count cells and one node is drawn per occupied
/// cell (plus random fill-up), guaranteeing field coverage that plain
/// random sampling only achieves in expectation. Matters at very sparse
/// budgets, where random placement can leave whole regions unobserved.
std::vector<std::size_t> sample_nodes_stratified(
    const net::UnitDiskGraph& graph, std::size_t count, geom::Rng& rng);

}  // namespace fluxfp::sim
