#include "sim/packet_sim.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <vector>

namespace fluxfp::sim {
namespace {

/// Pending simulator event: node `node` finishes a transmission at `time`.
struct TxEvent {
  double time;
  std::size_t node;
  bool operator>(const TxEvent& rhs) const { return time > rhs.time; }
};

}  // namespace

PacketLevelSimulator::PacketLevelSimulator(PacketSimConfig config)
    : config_(config) {
  if (!(config_.tx_time > 0.0) || config_.gen_spread < 0.0 ||
      config_.loss_prob < 0.0 || config_.loss_prob >= 1.0 ||
      config_.max_retries < 0) {
    throw std::invalid_argument("PacketLevelSimulator: bad config");
  }
}

PacketSimResult PacketLevelSimulator::simulate(
    const net::UnitDiskGraph& graph, const net::CollectionTree& tree,
    double stretch, geom::Rng& rng) const {
  if (tree.size() != graph.size()) {
    throw std::invalid_argument("PacketLevelSimulator: tree/graph mismatch");
  }
  if (!(stretch >= 0.0)) {
    throw std::invalid_argument("PacketLevelSimulator: negative stretch");
  }

  const std::size_t n = graph.size();
  PacketSimResult result;
  result.tx_counts.assign(n, 0.0);

  // Per-node forwarding state.
  std::vector<std::size_t> backlog(n, 0);  // frames waiting to be sent
  std::vector<bool> busy(n, false);        // currently transmitting
  std::priority_queue<TxEvent, std::vector<TxEvent>, std::greater<TxEvent>>
      events;

  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const auto whole = static_cast<std::size_t>(std::floor(stretch));
  const double frac = stretch - std::floor(stretch);

  // Frame generation: every reachable node creates its frames at a random
  // offset. We model generation as instantaneous enqueue at t=offset via a
  // zero-length "generation event" piggybacked on the event queue: enqueue
  // happens when the event fires.
  std::vector<std::pair<double, std::size_t>> generations;
  for (std::size_t i = 0; i < n; ++i) {
    if (!tree.reachable(i)) {
      continue;
    }
    std::size_t frames = whole;
    if (frac > 0.0 && unit(rng) < frac) {
      ++frames;
    }
    for (std::size_t f = 0; f < frames; ++f) {
      generations.emplace_back(unit(rng) * config_.gen_spread, i);
    }
  }
  result.generated = generations.size();

  // The root absorbs frames without transmitting (it IS the sink's
  // attachment point; its radio hands data straight to the mobile user —
  // counted as delivery, not flux). Non-root nodes transmit every frame
  // they generate or relay.
  auto start_tx_if_idle = [&](std::size_t node, double now) {
    if (busy[node] || backlog[node] == 0) {
      return;
    }
    busy[node] = true;
    --backlog[node];
    events.push({now + config_.tx_time, node});
  };

  // Sort generations into the event queue as zero-duration arrivals.
  // (Use the same priority queue with a sentinel: model a generation as an
  // event that fires at its offset on a virtual "generator" — simpler: a
  // pre-pass merging generations in time order with the event loop.)
  std::sort(generations.begin(), generations.end());
  std::size_t next_gen = 0;

  double now = 0.0;
  while (next_gen < generations.size() || !events.empty()) {
    const bool take_gen =
        next_gen < generations.size() &&
        (events.empty() || generations[next_gen].first <= events.top().time);
    if (take_gen) {
      now = generations[next_gen].first;
      const std::size_t node = generations[next_gen].second;
      ++next_gen;
      if (node == tree.root) {
        ++result.delivered;  // generated at the sink's own node
      } else {
        ++backlog[node];
        start_tx_if_idle(node, now);
      }
      continue;
    }

    const TxEvent ev = events.top();
    events.pop();
    now = ev.time;
    result.makespan = now;
    busy[ev.node] = false;
    ++result.tx_counts[ev.node];

    // Determine delivery of this frame: per-hop loss with retransmissions.
    bool success = config_.loss_prob <= 0.0 || unit(rng) >= config_.loss_prob;
    int tries = 0;
    while (!success && tries < config_.max_retries) {
      ++tries;
      ++result.tx_counts[ev.node];  // a retransmission is also sniffable
      success = unit(rng) >= config_.loss_prob;
    }
    // Model retransmission airtime by pushing the node's next service
    // start later: tries extra frames' worth of busy time.
    const double busy_until = now + tries * config_.tx_time;
    result.makespan = std::max(result.makespan, busy_until);

    if (success) {
      const std::size_t parent = tree.parent[ev.node];
      if (parent == net::kNoNode || parent == tree.root) {
        // Arrived at the root's radio (or the node forwards directly to
        // the root, which absorbs it).
        ++result.delivered;
        if (parent == tree.root) {
          // The root still "receives"; it does not retransmit.
        }
      } else {
        ++backlog[parent];
        start_tx_if_idle(parent, busy_until);
      }
    } else {
      ++result.dropped;
    }
    start_tx_if_idle(ev.node, busy_until);
  }

  return result;
}

}  // namespace fluxfp::sim
