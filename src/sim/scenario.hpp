#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "geom/sampling.hpp"
#include "net/graph.hpp"
#include "sim/measurement.hpp"
#include "sim/mobility.hpp"

namespace fluxfp::sim {

/// One simulated mobile user: a stretch, a mobility model, and a schedule
/// predicate telling whether the user initiates a data collection in the
/// window starting at a given time. Default schedule: always active
/// (the synchronous setting of §5.B).
struct SimUser {
  double stretch = 1.0;
  std::shared_ptr<const MobilityModel> mobility;
  std::function<bool(double time)> is_active;  ///< null = always active
};

/// Per-window output of a scenario run.
struct RoundObservation {
  double time = 0.0;
  std::vector<geom::Vec2> true_positions;  ///< per user, even if inactive
  std::vector<bool> active;                ///< per user
  net::FluxMap flux;                       ///< ground-truth window flux
};

/// Configuration of a windowed simulation run.
struct ScenarioConfig {
  int rounds = 10;
  double dt = 1.0;       ///< window length ΔT (time units per round)
  double start_time = 0.0;
  FluxNoise noise;       ///< applied to the window flux after accumulation
};

/// Runs `config.rounds` observation windows over `graph` with the given
/// users; each active user contributes one collection tree per window.
/// Throws std::invalid_argument when a user lacks a mobility model.
std::vector<RoundObservation> run_scenario(const net::UnitDiskGraph& graph,
                                           const std::vector<SimUser>& users,
                                           const ScenarioConfig& config,
                                           geom::Rng& rng);

}  // namespace fluxfp::sim
