#pragma once

#include <memory>

#include "geom/field.hpp"
#include "geom/polyline.hpp"
#include "geom/sampling.hpp"
#include "geom/vec2.hpp"

namespace fluxfp::sim {

/// A mobility model maps absolute time to a position in the field.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual geom::Vec2 position_at(double time) const = 0;
};

/// A user that never moves.
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(geom::Vec2 pos) : pos_(pos) {}
  geom::Vec2 position_at(double) const override { return pos_; }

 private:
  geom::Vec2 pos_;
};

/// Constant-speed travel along a polyline starting at `start_time`;
/// clamps to the endpoints outside the traversal interval.
class PathMobility final : public MobilityModel {
 public:
  PathMobility(geom::Polyline path, double speed, double start_time = 0.0);
  geom::Vec2 position_at(double time) const override;
  const geom::Polyline& path() const { return path_; }
  double speed() const { return speed_; }

 private:
  geom::Polyline path_;
  double speed_;
  double start_time_;
};

/// Classic random-waypoint mobility: repeatedly pick a uniform waypoint in
/// the field and walk toward it at `speed` (no pause time). The waypoint
/// sequence is pre-generated to cover [0, duration] so position queries are
/// deterministic after construction.
class RandomWaypointMobility final : public MobilityModel {
 public:
  RandomWaypointMobility(const geom::Field& field, double speed,
                         double duration, geom::Rng& rng);
  geom::Vec2 position_at(double time) const override;
  const geom::Polyline& path() const { return path_; }

 private:
  geom::Polyline path_;
  double speed_;
};

/// Gauss–Markov mobility (standard in WSN simulation): the velocity is an
/// AR(1) process v_t = a*v_{t-1} + (1-a)*v_mean + sigma*sqrt(1-a^2)*w_t,
/// pre-generated on a grid of `step_dt` steps over [0, duration], with the
/// trajectory clamped into the field. `memory` = a in [0,1): 0 is a random
/// walk, ->1 is nearly straight-line motion.
class GaussMarkovMobility final : public MobilityModel {
 public:
  GaussMarkovMobility(const geom::Field& field, geom::Vec2 start,
                      double mean_speed, double memory, double sigma,
                      double step_dt, double duration, geom::Rng& rng);
  geom::Vec2 position_at(double time) const override;

 private:
  geom::Polyline path_;
  double step_dt_;
};

/// Brownian-style random walk on a grid of time steps `step_dt`, with each
/// step uniform in a disc of radius `step_radius`, reflected into the field.
/// Pre-generated over [0, duration]; positions between steps are
/// interpolated linearly.
class RandomWalkMobility final : public MobilityModel {
 public:
  RandomWalkMobility(const geom::Field& field, geom::Vec2 start,
                     double step_radius, double step_dt, double duration,
                     geom::Rng& rng);
  geom::Vec2 position_at(double time) const override;

 private:
  geom::Polyline path_;
  double step_dt_;
};

}  // namespace fluxfp::sim
