#include "sim/scenario.hpp"

#include <stdexcept>

namespace fluxfp::sim {

std::vector<RoundObservation> run_scenario(const net::UnitDiskGraph& graph,
                                           const std::vector<SimUser>& users,
                                           const ScenarioConfig& config,
                                           geom::Rng& rng) {
  for (const SimUser& u : users) {
    if (!u.mobility) {
      throw std::invalid_argument("run_scenario: user without mobility model");
    }
  }
  FluxEngine engine(graph);
  std::vector<RoundObservation> out;
  out.reserve(static_cast<std::size_t>(std::max(config.rounds, 0)));

  for (int round = 0; round < config.rounds; ++round) {
    RoundObservation obs;
    obs.time = config.start_time + static_cast<double>(round + 1) * config.dt;
    obs.true_positions.reserve(users.size());
    obs.active.reserve(users.size());
    std::vector<Collection> collections;
    for (std::size_t i = 0; i < users.size(); ++i) {
      const SimUser& u = users[i];
      const geom::Vec2 pos = u.mobility->position_at(obs.time);
      const bool active = !u.is_active || u.is_active(obs.time);
      obs.true_positions.push_back(pos);
      obs.active.push_back(active);
      if (active) {
        collections.push_back({i, pos, u.stretch});
      }
    }
    obs.flux = engine.measure(collections, rng);
    FluxEngine::apply_noise(obs.flux, config.noise, rng);
    out.push_back(std::move(obs));
  }
  return out;
}

}  // namespace fluxfp::sim
