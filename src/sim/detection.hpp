#pragma once

#include <span>
#include <vector>

#include "geom/sampling.hpp"

namespace fluxfp::sim {

/// Draws one Bernoulli detection bit per probability: out[i] = 1.0 with
/// probability clamp(probabilities[i], 0, 1), else 0.0 — the passive
/// sniffer's binary "overheard this user during the epoch" trace. Missing
/// entries (net::kMissingReading NaN) stay missing and consume NO draw,
/// so fault masks do not shift the RNG stream of the live sniffers that
/// follow them.
std::vector<double> bernoulli_detections(std::span<const double> probabilities,
                                         geom::Rng& rng);

/// Symmetric bit-flip noise on a binary trace: each live reading flips
/// (1 <-> 0) with probability flip_prob — false alarms and missed
/// detections in one knob. Missing entries stay missing, again without
/// consuming a draw. Throws std::invalid_argument unless flip_prob is in
/// [0, 1].
void flip_detections(std::vector<double>& readings, double flip_prob,
                     geom::Rng& rng);

}  // namespace fluxfp::sim
