#include "sim/detection.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "net/flux.hpp"

namespace fluxfp::sim {

std::vector<double> bernoulli_detections(std::span<const double> probabilities,
                                         geom::Rng& rng) {
  std::vector<double> out;
  out.reserve(probabilities.size());
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  for (double p : probabilities) {
    if (net::is_missing(p)) {
      out.push_back(net::kMissingReading);
      continue;
    }
    const double clamped = std::clamp(p, 0.0, 1.0);
    out.push_back(uni(rng) < clamped ? 1.0 : 0.0);
  }
  return out;
}

void flip_detections(std::vector<double>& readings, double flip_prob,
                     geom::Rng& rng) {
  if (!(flip_prob >= 0.0) || !(flip_prob <= 1.0)) {
    throw std::invalid_argument("flip_detections: flip_prob outside [0, 1]");
  }
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  for (double& r : readings) {
    if (net::is_missing(r)) {
      continue;  // no draw: masks must not shift live sniffers' streams
    }
    if (uni(rng) < flip_prob) {
      r = r != 0.0 ? 0.0 : 1.0;
    }
  }
}

}  // namespace fluxfp::sim
