#include "sim/measurement.hpp"

#include "net/routing.hpp"

namespace fluxfp::sim {

net::FluxMap FluxEngine::measure(std::span<const Collection> collections,
                                 geom::Rng& rng) const {
  net::FluxMap total(graph_->size(), 0.0);
  double hop_acc = 0.0;
  std::size_t hop_n = 0;
  for (const Collection& c : collections) {
    const net::CollectionTree tree =
        net::build_collection_tree(*graph_, c.position, rng);
    net::accumulate(total, net::tree_flux(tree, c.stretch));
    hop_acc += net::average_hop_length(*graph_, tree);
    ++hop_n;
  }
  if (hop_n > 0) {
    last_hop_length_ = hop_acc / static_cast<double>(hop_n);
  }
  return total;
}

void FluxEngine::apply_noise(net::FluxMap& flux, const FluxNoise& noise,
                             geom::Rng& rng) {
  if (noise.relative_sigma <= 0.0 && noise.dropout_prob <= 0.0) {
    return;
  }
  std::normal_distribution<double> gauss(0.0, noise.relative_sigma);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (double& v : flux) {
    if (noise.dropout_prob > 0.0 && unit(rng) < noise.dropout_prob) {
      v = net::kMissingReading;
      continue;
    }
    if (noise.relative_sigma > 0.0) {
      v = std::max(0.0, v * (1.0 + gauss(rng)));
    }
  }
}

}  // namespace fluxfp::sim
