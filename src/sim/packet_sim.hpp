#pragma once

#include <cstddef>

#include "geom/sampling.hpp"
#include "net/flux.hpp"
#include "net/routing.hpp"

namespace fluxfp::sim {

/// Configuration of the packet-level simulator.
struct PacketSimConfig {
  /// Airtime of one frame (time units; the paper's ΔT is "seconds"-level,
  /// so with 1 ms frames a 900-node collection fits comfortably in one
  /// window — which simulate() lets you verify via the makespan).
  double tx_time = 0.001;
  /// Random offset spread for the per-node generation instants; models
  /// unsynchronized sensing across the network.
  double gen_spread = 0.05;
  /// Independent per-transmission loss probability.
  double loss_prob = 0.0;
  /// Retransmissions attempted per frame before the packet is dropped.
  int max_retries = 3;
};

/// Outcome of one simulated data collection.
struct PacketSimResult {
  /// Frames *transmitted* per node (including retransmissions) — exactly
  /// what a passive sniffer near that node counts in the window.
  net::FluxMap tx_counts;
  std::size_t generated = 0;  ///< data packets created at the nodes
  std::size_t delivered = 0;  ///< packets that reached the sink (tree root)
  std::size_t dropped = 0;    ///< packets lost after exhausting retries
  double makespan = 0.0;      ///< time of the last transmission completion
};

/// Discrete-event, packet-level simulation of one data collection over a
/// collection tree: every node generates its data frames at a random
/// offset, forwards toward the root one frame per `tx_time` (half-duplex,
/// one transmission at a time per node), with per-hop losses and
/// retransmissions.
///
/// This is the mechanistic ground truth beneath the library's flux
/// abstraction: with loss_prob = 0 and an integer stretch, tx_counts of
/// every non-root node equals the analytic tree_flux (stretch x subtree
/// size) exactly; the root absorbs frames for the sink and transmits
/// nothing (tx_counts[root] == 0 by construction). The makespan shows that
/// a whole collection fits inside a "seconds"-level observation window ΔT
/// (§3.A). With losses, the sniffed counts deviate — the physical
/// justification for the FluxNoise model. Retransmission airtime is folded
/// into the sender's busy period as an approximation.
class PacketLevelSimulator {
 public:
  explicit PacketLevelSimulator(PacketSimConfig config = {});

  /// Simulates a collection with traffic stretch `stretch` (fractional
  /// stretches generate floor(stretch) frames plus one more with
  /// probability frac(stretch), so E[frames] = stretch per node).
  /// Throws std::invalid_argument for negative stretch or a tree whose
  /// size differs from the graph's.
  PacketSimResult simulate(const net::UnitDiskGraph& graph,
                           const net::CollectionTree& tree, double stretch,
                           geom::Rng& rng) const;

  const PacketSimConfig& config() const { return config_; }

 private:
  PacketSimConfig config_;
};

}  // namespace fluxfp::sim
