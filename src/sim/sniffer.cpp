#include "sim/sniffer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace fluxfp::sim {

std::vector<std::size_t> sample_nodes(std::size_t n, std::size_t count,
                                      geom::Rng& rng) {
  if (count > n || count == 0) {
    throw std::invalid_argument("sample_nodes: bad count");
  }
  // Partial Fisher–Yates.
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = 0; i < count; ++i) {
    std::uniform_int_distribution<std::size_t> pick(i, n - 1);
    std::swap(idx[i], idx[pick(rng)]);
  }
  idx.resize(count);
  std::sort(idx.begin(), idx.end());
  return idx;
}

std::vector<std::size_t> sample_nodes_fraction(std::size_t n, double fraction,
                                               geom::Rng& rng) {
  if (!(fraction > 0.0) || fraction > 1.0) {
    throw std::invalid_argument("sample_nodes_fraction: bad fraction");
  }
  const auto count = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(n)));
  return sample_nodes(n, std::max<std::size_t>(count, 1), rng);
}

std::vector<std::size_t> sample_nodes_stratified(
    const net::UnitDiskGraph& graph, std::size_t count, geom::Rng& rng) {
  const std::size_t n = graph.size();
  if (count > n || count == 0) {
    throw std::invalid_argument("sample_nodes_stratified: bad count");
  }
  // Bounding box of the deployment.
  double min_x = graph.position(0).x, max_x = min_x;
  double min_y = graph.position(0).y, max_y = min_y;
  for (std::size_t i = 0; i < n; ++i) {
    min_x = std::min(min_x, graph.position(i).x);
    max_x = std::max(max_x, graph.position(i).x);
    min_y = std::min(min_y, graph.position(i).y);
    max_y = std::max(max_y, graph.position(i).y);
  }
  const auto side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(count))));
  const double cw = (max_x - min_x) / static_cast<double>(side) + 1e-9;
  const double ch = (max_y - min_y) / static_cast<double>(side) + 1e-9;

  // Bucket nodes by cell and shuffle each bucket.
  std::vector<std::vector<std::size_t>> cells(side * side);
  for (std::size_t i = 0; i < n; ++i) {
    const auto cx = static_cast<std::size_t>(
        (graph.position(i).x - min_x) / cw);
    const auto cy = static_cast<std::size_t>(
        (graph.position(i).y - min_y) / ch);
    cells[std::min(cy, side - 1) * side + std::min(cx, side - 1)].push_back(
        i);
  }
  std::vector<std::size_t> out;
  out.reserve(count);
  std::vector<bool> taken(n, false);
  // Round-robin over occupied cells until the budget is filled.
  for (std::size_t round = 0; out.size() < count; ++round) {
    bool any = false;
    for (auto& cell : cells) {
      if (round < cell.size() && out.size() < count) {
        if (round == 0) {
          std::shuffle(cell.begin(), cell.end(), rng);
        }
        out.push_back(cell[round]);
        taken[cell[round]] = true;
        any = true;
      }
    }
    if (!any) {
      break;  // all nodes consumed
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<double> gather(const net::FluxMap& flux,
                           std::span<const std::size_t> nodes) {
  std::vector<double> out;
  out.reserve(nodes.size());
  for (std::size_t i : nodes) {
    if (i >= flux.size()) {
      throw std::out_of_range("gather: node index out of range");
    }
    out.push_back(flux[i]);
  }
  return out;
}

}  // namespace fluxfp::sim
