#include "trace/ap.hpp"

#include <limits>
#include <stdexcept>

namespace fluxfp::trace {

std::vector<AccessPoint> grid_aps(const geom::RectField& field,
                                  std::size_t rows, std::size_t cols) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("grid_aps: zero rows or cols");
  }
  std::vector<AccessPoint> aps;
  aps.reserve(rows * cols);
  const double cw = field.width() / static_cast<double>(cols);
  const double ch = field.height() / static_cast<double>(rows);
  std::size_t id = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      aps.push_back({id,
                     {(static_cast<double>(c) + 0.5) * cw,
                      (static_cast<double>(r) + 0.5) * ch},
                     "AP" + std::to_string(r) + "-" + std::to_string(c)});
      ++id;
    }
  }
  return aps;
}

std::vector<AccessPoint> random_aps(const geom::Field& field,
                                    std::size_t count, geom::Rng& rng) {
  std::vector<AccessPoint> aps;
  aps.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    aps.push_back(
        {i, geom::uniform_in_field(field, rng), "AP" + std::to_string(i)});
  }
  return aps;
}

std::size_t nearest_ap(std::span<const AccessPoint> aps, geom::Vec2 p) {
  if (aps.empty()) {
    throw std::invalid_argument("nearest_ap: no APs");
  }
  std::size_t best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < aps.size(); ++i) {
    const double d2 = geom::distance2(aps[i].position, p);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

std::vector<std::size_t> ap_neighbors(std::span<const AccessPoint> aps,
                                      std::size_t i, double radius) {
  if (i >= aps.size()) {
    throw std::out_of_range("ap_neighbors: index out of range");
  }
  std::vector<std::size_t> out;
  const double r2 = radius * radius;
  for (std::size_t j = 0; j < aps.size(); ++j) {
    if (j != i && geom::distance2(aps[i].position, aps[j].position) <= r2) {
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace fluxfp::trace
