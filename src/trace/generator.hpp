#pragma once

#include "geom/sampling.hpp"
#include "trace/format.hpp"

namespace fluxfp::trace {

/// Parameters of the synthetic Dartmouth-style trace generator. Substitutes
/// for the proprietary dartmouth/campus/movement v1.3 data set (see
/// DESIGN.md): it reproduces the properties the paper's experiment
/// consumes — per-user AP-association sequences with heavy-tailed dwell
/// times, movements between nearby APs, and mutually asynchronous activity.
struct TraceGenConfig {
  std::size_t num_users = 20;
  /// Raw trace duration in seconds (before timeline compression).
  double duration = 360000.0;
  /// Median AP dwell time (seconds); dwell is lognormal around this, giving
  /// the bursty association pattern of real syslog traces.
  double median_dwell = 1800.0;
  /// Lognormal sigma of the dwell distribution (heavier tail for larger).
  double dwell_sigma = 1.2;
  /// Users move to an AP within this radius of the current one (field
  /// units); if none, any AP may be chosen.
  double hop_radius = 12.0;
  /// Probability that a movement jumps to a uniformly random AP instead of
  /// a nearby one (models building changes across campus).
  double jump_prob = 0.1;
};

/// Generates a synthetic association trace over the given AP set.
/// Each user: start at a random AP at a random offset within the first
/// dwell, then alternate (dwell, move) forever until `duration`; each
/// arrival emits a TraceEvent. Events are returned time-ordered.
Trace generate_trace(std::vector<AccessPoint> aps, const TraceGenConfig& config,
                     geom::Rng& rng);

}  // namespace fluxfp::trace
