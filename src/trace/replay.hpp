#pragma once

#include <memory>
#include <vector>

#include "sim/mobility.hpp"
#include "sim/scenario.hpp"
#include "trace/format.hpp"

namespace fluxfp::trace {

/// Mobility derived from an AP association sequence: the user is assumed to
/// move on straight lines between consecutive associated APs, arriving at
/// each AP at its (compressed) association time. Before the first event it
/// sits at the first AP; after the last, at the last AP. This is the
/// "concatenate AP locations into a mobility path" reconstruction of §5.C.
class TraceMobility final : public sim::MobilityModel {
 public:
  /// `times` strictly increasing, same length as `positions` (>= 1).
  TraceMobility(std::vector<double> times, std::vector<geom::Vec2> positions);

  geom::Vec2 position_at(double time) const override;

 private:
  std::vector<double> times_;
  std::vector<geom::Vec2> positions_;
};

/// Options for turning a trace into simulation users.
struct ReplayConfig {
  /// Timeline compression factor (§5.C compresses by 100 to make compact
  /// trajectories): compressed time = raw time / compression.
  double compression = 100.0;
  /// Traffic stretch range; each user draws uniformly from [lo, hi].
  double stretch_lo = 1.0;
  double stretch_hi = 3.0;
  /// Window length ΔT used by the schedule: a user is active in the window
  /// ending at t iff it has an association event in (t - window, t].
  double window = 1.0;
};

/// One replayed user: mobility + asynchronous collection schedule.
struct ReplayedUser {
  std::string name;
  sim::SimUser sim;                    ///< ready for run_scenario
  std::vector<double> event_times;     ///< compressed collection epochs
  geom::Polyline path;                 ///< AP-derived movement trajectory
};

/// Builds replayed users for every user in `trace`. Users with no events
/// are skipped. Event times are compressed and shifted so the earliest
/// event across users lands at time 0.
std::vector<ReplayedUser> replay_users(const Trace& trace,
                                       const ReplayConfig& config,
                                       geom::Rng& rng);

/// End of the compressed timeline (latest compressed event time).
double compressed_end_time(const std::vector<ReplayedUser>& users);

}  // namespace fluxfp::trace
