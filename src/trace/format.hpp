#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/ap.hpp"

namespace fluxfp::trace {

/// One syslog-style association record: at `time` (raw trace seconds),
/// `user`'s network interface associated with AP `ap`.
struct TraceEvent {
  std::string user;
  double time = 0.0;
  std::size_t ap = 0;
};

/// A mobility trace: the AP landmark set plus a time-ordered event log.
/// Mirrors the information content of the Dartmouth "movement" syslog
/// extraction (user, timestamp, AP name).
struct Trace {
  std::vector<AccessPoint> aps;
  std::vector<TraceEvent> events;

  /// Distinct user names in first-appearance order.
  std::vector<std::string> users() const;
  /// All events of one user, time-ordered.
  std::vector<TraceEvent> events_of(const std::string& user) const;
};

/// Serializes events as CSV lines "user,time,ap" (header included).
void write_events_csv(std::ostream& os, const Trace& trace);

/// Parses the CSV produced by write_events_csv into `trace.events`
/// (the AP set must be supplied separately). Throws std::runtime_error on
/// malformed input.
std::vector<TraceEvent> read_events_csv(std::istream& is);

}  // namespace fluxfp::trace
