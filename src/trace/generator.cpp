#include "trace/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fluxfp::trace {

Trace generate_trace(std::vector<AccessPoint> aps,
                     const TraceGenConfig& config, geom::Rng& rng) {
  if (aps.empty() || config.num_users == 0 || !(config.duration > 0.0)) {
    throw std::invalid_argument("generate_trace: bad inputs");
  }
  Trace trace;
  trace.aps = std::move(aps);

  const double mu = std::log(config.median_dwell);
  std::lognormal_distribution<double> dwell(mu, config.dwell_sigma);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<std::size_t> any_ap(0, trace.aps.size() - 1);

  for (std::size_t u = 0; u < config.num_users; ++u) {
    const std::string name = "user" + std::to_string(u);
    std::size_t cur = any_ap(rng);
    // Random phase so users are mutually asynchronous from the start.
    double t = unit(rng) * config.median_dwell;
    trace.events.push_back({name, t, trace.aps[cur].id});
    while (true) {
      t += std::max(dwell(rng), 1.0);
      if (t >= config.duration) {
        break;
      }
      std::size_t next;
      const std::vector<std::size_t> nearby =
          ap_neighbors(trace.aps, cur, config.hop_radius);
      if (nearby.empty() || unit(rng) < config.jump_prob) {
        next = any_ap(rng);
      } else {
        std::uniform_int_distribution<std::size_t> pick(0, nearby.size() - 1);
        next = nearby[pick(rng)];
      }
      cur = next;
      trace.events.push_back({name, t, trace.aps[cur].id});
    }
  }
  std::sort(trace.events.begin(), trace.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.time < b.time;
            });
  return trace;
}

}  // namespace fluxfp::trace
