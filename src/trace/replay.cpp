#include "trace/replay.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace fluxfp::trace {

TraceMobility::TraceMobility(std::vector<double> times,
                             std::vector<geom::Vec2> positions)
    : times_(std::move(times)), positions_(std::move(positions)) {
  if (times_.empty() || times_.size() != positions_.size()) {
    throw std::invalid_argument("TraceMobility: bad sequence");
  }
  for (std::size_t i = 1; i < times_.size(); ++i) {
    if (!(times_[i] > times_[i - 1])) {
      throw std::invalid_argument("TraceMobility: times not increasing");
    }
  }
}

geom::Vec2 TraceMobility::position_at(double time) const {
  if (time <= times_.front()) {
    return positions_.front();
  }
  if (time >= times_.back()) {
    return positions_.back();
  }
  const auto it = std::upper_bound(times_.begin(), times_.end(), time);
  const std::size_t i = static_cast<std::size_t>(it - times_.begin());
  const double t0 = times_[i - 1];
  const double t1 = times_[i];
  const double frac = (time - t0) / (t1 - t0);
  return geom::lerp(positions_[i - 1], positions_[i], frac);
}

std::vector<ReplayedUser> replay_users(const Trace& trace,
                                       const ReplayConfig& config,
                                       geom::Rng& rng) {
  if (!(config.compression > 0.0) || !(config.window > 0.0) ||
      config.stretch_hi < config.stretch_lo) {
    throw std::invalid_argument("replay_users: bad config");
  }
  // Index AP ids to positions.
  auto position_of = [&](std::size_t ap_id) -> geom::Vec2 {
    for (const AccessPoint& ap : trace.aps) {
      if (ap.id == ap_id) {
        return ap.position;
      }
    }
    throw std::invalid_argument("replay_users: event references unknown AP");
  };

  double earliest = std::numeric_limits<double>::infinity();
  for (const TraceEvent& e : trace.events) {
    earliest = std::min(earliest, e.time);
  }

  std::uniform_real_distribution<double> stretch(config.stretch_lo,
                                                 config.stretch_hi);
  std::vector<ReplayedUser> out;
  for (const std::string& name : trace.users()) {
    const std::vector<TraceEvent> events = trace.events_of(name);
    if (events.empty()) {
      continue;
    }
    ReplayedUser user;
    user.name = name;
    std::vector<double> times;
    std::vector<geom::Vec2> positions;
    for (const TraceEvent& e : events) {
      const double t = (e.time - earliest) / config.compression;
      // Drop duplicate timestamps (same-second reassociations).
      if (!times.empty() && !(t > times.back())) {
        continue;
      }
      times.push_back(t);
      positions.push_back(position_of(e.ap));
      user.event_times.push_back(t);
    }
    if (times.empty()) {
      continue;
    }
    user.sim.stretch = stretch(rng);
    user.path = geom::Polyline(positions);
    user.sim.mobility = std::make_shared<TraceMobility>(times, positions);
    const std::vector<double> epochs = user.event_times;
    const double window = config.window;
    user.sim.is_active = [epochs, window](double t) {
      // Any collection epoch inside (t - window, t]?
      const auto it = std::upper_bound(epochs.begin(), epochs.end(), t);
      return it != epochs.begin() && *(it - 1) > t - window;
    };
    out.push_back(std::move(user));
  }
  return out;
}

double compressed_end_time(const std::vector<ReplayedUser>& users) {
  double end = 0.0;
  for (const ReplayedUser& u : users) {
    if (!u.event_times.empty()) {
      end = std::max(end, u.event_times.back());
    }
  }
  return end;
}

}  // namespace fluxfp::trace
