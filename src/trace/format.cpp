#include "trace/format.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace fluxfp::trace {

std::vector<std::string> Trace::users() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const TraceEvent& e : events) {
    if (seen.insert(e.user).second) {
      out.push_back(e.user);
    }
  }
  return out;
}

std::vector<TraceEvent> Trace::events_of(const std::string& user) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events) {
    if (e.user == user) {
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.time < b.time;
            });
  return out;
}

void write_events_csv(std::ostream& os, const Trace& trace) {
  os << "user,time,ap\n";
  for (const TraceEvent& e : trace.events) {
    os << e.user << ',' << e.time << ',' << e.ap << '\n';
  }
}

std::vector<TraceEvent> read_events_csv(std::istream& is) {
  std::vector<TraceEvent> events;
  std::string line;
  bool first = true;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) {
      continue;
    }
    if (first) {
      first = false;
      if (line.rfind("user,", 0) == 0) {
        continue;  // header
      }
    }
    std::istringstream ss(line);
    TraceEvent e;
    std::string time_str;
    std::string ap_str;
    if (!std::getline(ss, e.user, ',') || !std::getline(ss, time_str, ',') ||
        !std::getline(ss, ap_str)) {
      throw std::runtime_error("read_events_csv: malformed line " +
                               std::to_string(lineno));
    }
    try {
      e.time = std::stod(time_str);
      e.ap = static_cast<std::size_t>(std::stoul(ap_str));
    } catch (const std::exception&) {
      throw std::runtime_error("read_events_csv: bad number on line " +
                               std::to_string(lineno));
    }
    events.push_back(std::move(e));
  }
  return events;
}

}  // namespace fluxfp::trace
