#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "geom/field.hpp"
#include "geom/sampling.hpp"
#include "geom/vec2.hpp"

namespace fluxfp::trace {

/// A campus wireless access point used as a landmark reference for mobile
/// user locations (§5.C uses 50 APs of the Dartmouth data set inside a
/// rectangular region).
struct AccessPoint {
  std::size_t id = 0;
  geom::Vec2 position;
  std::string name;
};

/// `rows` x `cols` AP landmarks spread on a regular grid inside the field
/// (inset half a cell from the boundary), named "APr-c".
std::vector<AccessPoint> grid_aps(const geom::RectField& field,
                                  std::size_t rows, std::size_t cols);

/// `count` uniformly placed APs named "APi".
std::vector<AccessPoint> random_aps(const geom::Field& field,
                                    std::size_t count, geom::Rng& rng);

/// Index of the AP nearest to `p`. Throws std::invalid_argument when empty.
std::size_t nearest_ap(std::span<const AccessPoint> aps, geom::Vec2 p);

/// Indices of APs within `radius` of aps[i] (excluding i) — the "walkable
/// neighbors" used by the trace generator's mobility.
std::vector<std::size_t> ap_neighbors(std::span<const AccessPoint> aps,
                                      std::size_t i, double radius);

}  // namespace fluxfp::trace
