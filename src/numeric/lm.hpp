#pragma once

#include <functional>
#include <vector>

namespace fluxfp::numeric {

/// A vector-valued residual function r(theta): params -> residuals.
/// Levenberg–Marquardt minimizes 0.5 * ||r(theta)||^2.
using ResidualFn =
    std::function<std::vector<double>(const std::vector<double>&)>;

/// Options for Levenberg–Marquardt.
struct LmOptions {
  int max_iter = 100;
  double initial_lambda = 1e-3;
  double lambda_up = 10.0;
  double lambda_down = 0.3;
  double gradient_tol = 1e-10;  ///< stop when ||J^T r||_inf below this
  double step_tol = 1e-12;      ///< stop when the step norm is below this
  double jacobian_eps = 1e-6;   ///< forward-difference step for the Jacobian
};

/// Result of an LM run.
struct LmResult {
  std::vector<double> params;
  double cost = 0.0;  ///< 0.5 * ||r||^2 at the solution
  int iterations = 0;
  bool converged = false;
};

/// Levenberg–Marquardt with forward-difference Jacobian (Madsen, Nielsen &
/// Tingleff, "Methods for Non-linear Least Squares Problems" — the method
/// the paper cites as inapplicable to non-differentiable rectangular-field
/// objectives; we provide it both as a comparator and for smooth problems).
LmResult levenberg_marquardt(const ResidualFn& fn,
                             std::vector<double> initial,
                             const LmOptions& opts = {});

/// Plain Gauss–Newton (no damping); diverges on hard problems, provided for
/// ablation against LM.
LmResult gauss_newton(const ResidualFn& fn, std::vector<double> initial,
                      int max_iter = 50, double step_tol = 1e-12);

}  // namespace fluxfp::numeric
