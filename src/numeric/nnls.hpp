#pragma once

#include <span>
#include <vector>

#include "numeric/matrix.hpp"

namespace fluxfp::numeric {

/// Result of a non-negative least-squares solve.
struct NnlsResult {
  std::vector<double> x;  ///< solution, all entries >= 0
  double residual = 0.0;  ///< ||A x - b||_2 at the solution
  bool converged = false;
};

/// Lawson–Hanson active-set NNLS: minimize ||A x - b||_2 subject to x >= 0.
///
/// The flux-fitting subproblem is tiny (K columns = number of mobile users,
/// typically <= 4) but is solved tens of thousands of times per filtering
/// round, so the implementation avoids allocation-churn in the inner loop.
/// `max_iter` bounds active-set iterations; the default is generous for
/// well-conditioned small systems.
NnlsResult nnls(const Matrix& a, const std::vector<double>& b,
                int max_iter = 200);

/// Closed-form single-column NNLS: min_{s>=0} ||s*f - b||.
/// Returns the optimal s (0 if f is zero or the unconstrained optimum is
/// negative).
double nnls_single(std::span<const double> f, std::span<const double> b);

}  // namespace fluxfp::numeric
