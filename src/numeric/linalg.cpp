#include "numeric/linalg.hpp"

#include <cmath>

namespace fluxfp::numeric {

std::optional<std::vector<double>> cholesky_solve(
    const Matrix& a, const std::vector<double>& b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    return std::nullopt;
  }
  // L lower-triangular with A = L L^T.
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) {
      diag -= l(j, k) * l(j, k);
    }
    if (!(diag > 0.0)) {
      return std::nullopt;  // not SPD (or NaN)
    }
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        v -= l(i, k) * l(j, k);
      }
      l(i, j) = v / l(j, j);
    }
  }
  // Forward substitution L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) {
      v -= l(i, k) * y[k];
    }
    y[i] = v / l(i, i);
  }
  // Back substitution L^T x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) {
      v -= l(k, ii) * x[k];
    }
    x[ii] = v / l(ii, ii);
  }
  return x;
}

std::optional<std::vector<double>> qr_least_squares(
    const Matrix& a, const std::vector<double>& b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m < n || b.size() != m || n == 0) {
    return std::nullopt;
  }
  Matrix r = a;              // reduced in place to R (upper trapezoid)
  std::vector<double> qtb = b;  // accumulates Q^T b

  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k below the diagonal.
    double alpha = 0.0;
    for (std::size_t i = k; i < m; ++i) {
      alpha += r(i, k) * r(i, k);
    }
    alpha = std::sqrt(alpha);
    if (alpha == 0.0) {
      return std::nullopt;  // rank deficient
    }
    if (r(k, k) > 0.0) {
      alpha = -alpha;
    }
    std::vector<double> v(m - k);
    v[0] = r(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) {
      v[i - k] = r(i, k);
    }
    double vnorm2 = 0.0;
    for (double t : v) {
      vnorm2 += t * t;
    }
    if (vnorm2 == 0.0) {
      continue;  // column already reduced
    }
    // Apply H = I - 2 v v^T / (v^T v) to remaining columns and to qtb.
    for (std::size_t c = k; c < n; ++c) {
      double proj = 0.0;
      for (std::size_t i = k; i < m; ++i) {
        proj += v[i - k] * r(i, c);
      }
      proj = 2.0 * proj / vnorm2;
      for (std::size_t i = k; i < m; ++i) {
        r(i, c) -= proj * v[i - k];
      }
    }
    double proj = 0.0;
    for (std::size_t i = k; i < m; ++i) {
      proj += v[i - k] * qtb[i];
    }
    proj = 2.0 * proj / vnorm2;
    for (std::size_t i = k; i < m; ++i) {
      qtb[i] -= proj * v[i - k];
    }
  }

  // Back substitution on the n x n upper triangle.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = qtb[ii];
    for (std::size_t c = ii + 1; c < n; ++c) {
      v -= r(ii, c) * x[c];
    }
    const double diag = r(ii, ii);
    if (std::abs(diag) < 1e-14) {
      return std::nullopt;
    }
    x[ii] = v / diag;
  }
  return x;
}

double residual_norm(const Matrix& a, const std::vector<double>& x,
                     const std::vector<double>& b) {
  return norm(subtract(a * x, b));
}

}  // namespace fluxfp::numeric
