#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fluxfp::numeric {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Unbiased sample standard deviation; 0 for fewer than two samples.
double stddev(std::span<const double> xs);

double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);
double sum(std::span<const double> xs);

/// p-th percentile (p in [0,1]) with linear interpolation between order
/// statistics. NaN samples are excluded before sorting (NaN breaks the
/// strict weak order std::sort requires, which would make the result depend
/// on where the NaNs sat in the input). Throws std::invalid_argument for an
/// empty span, p outside [0,1], or an all-NaN sample.
double percentile(std::span<const double> xs, double p);

/// Median, i.e. percentile(xs, 0.5).
double median(std::span<const double> xs);

/// An empirical CDF over a sample: evaluate(v) = fraction of samples <= v.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  /// Fraction of samples <= v.
  double evaluate(double v) const;
  /// Smallest sample value q with evaluate(q) >= p (p in (0,1]).
  double quantile(double p) const;
  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// A fixed-bin histogram over [lo, hi); values outside are clamped into the
/// first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double v);
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  /// Center of bin `i`.
  double bin_center(std::size_t i) const;
  /// Fraction of all samples in bin `i`; 0 when empty.
  double fraction(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double v);
  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  ///< unbiased; 0 for n < 2
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace fluxfp::numeric
