#include "numeric/nnls.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "numeric/linalg.hpp"

namespace fluxfp::numeric {
namespace {

/// Unconstrained least squares restricted to the columns in `passive`
/// (true = included). Returns full-size vector with zeros elsewhere, or an
/// empty vector on failure.
std::vector<double> solve_subproblem(const Matrix& a,
                                     const std::vector<double>& b,
                                     const std::vector<bool>& passive) {
  const std::size_t n = a.cols();
  std::vector<std::size_t> idx;
  for (std::size_t j = 0; j < n; ++j) {
    if (passive[j]) {
      idx.push_back(j);
    }
  }
  if (idx.empty()) {
    return std::vector<double>(n, 0.0);
  }
  Matrix sub(a.rows(), idx.size());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < idx.size(); ++c) {
      sub(r, c) = a(r, idx[c]);
    }
  }
  const auto z = qr_least_squares(sub, b);
  if (!z) {
    return {};
  }
  std::vector<double> full(n, 0.0);
  for (std::size_t c = 0; c < idx.size(); ++c) {
    full[idx[c]] = (*z)[c];
  }
  return full;
}

}  // namespace

NnlsResult nnls(const Matrix& a, const std::vector<double>& b, int max_iter) {
  NnlsResult out;
  const std::size_t n = a.cols();
  if (a.rows() != b.size() || n == 0) {
    return out;
  }
  if (n == 1) {
    std::vector<double> col(a.rows());
    for (std::size_t r = 0; r < a.rows(); ++r) {
      col[r] = a(r, 0);
    }
    const double s = nnls_single(col, b);
    out.x = {s};
    for (double& c : col) c *= s;
    out.residual = norm(subtract(col, b));
    out.converged = true;
    return out;
  }

  std::vector<bool> passive(n, false);
  std::vector<double> x(n, 0.0);
  const double tol = 1e-10 * (1.0 + norm(b));

  for (int iter = 0; iter < max_iter; ++iter) {
    // Gradient of 0.5||Ax-b||^2 is A^T (Ax - b); w = -gradient.
    const std::vector<double> res = subtract(b, a * x);
    std::vector<double> w(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t r = 0; r < a.rows(); ++r) {
        acc += a(r, j) * res[r];
      }
      w[j] = acc;
    }
    // Most-violated KKT multiplier among active (zero) variables.
    double wmax = tol;
    std::size_t jmax = n;
    for (std::size_t j = 0; j < n; ++j) {
      if (!passive[j] && w[j] > wmax) {
        wmax = w[j];
        jmax = j;
      }
    }
    if (jmax == n) {
      out.converged = true;  // KKT satisfied
      break;
    }
    passive[jmax] = true;

    // Inner loop: solve on the passive set; walk back if any passive
    // variable would go negative.
    for (int inner = 0; inner < max_iter; ++inner) {
      std::vector<double> z = solve_subproblem(a, b, passive);
      if (z.empty()) {
        // Numerically rank-deficient subproblem: drop the newest column.
        passive[jmax] = false;
        break;
      }
      double alpha = 1.0;
      bool feasible = true;
      for (std::size_t j = 0; j < n; ++j) {
        if (passive[j] && z[j] <= 0.0) {
          feasible = false;
          const double denom = x[j] - z[j];
          if (denom > 0.0) {
            alpha = std::min(alpha, x[j] / denom);
          }
        }
      }
      if (feasible) {
        x = std::move(z);
        break;
      }
      for (std::size_t j = 0; j < n; ++j) {
        if (passive[j]) {
          x[j] += alpha * (z[j] - x[j]);
          if (x[j] <= tol) {
            x[j] = 0.0;
            passive[j] = false;
          }
        }
      }
    }
  }

  out.x = x;
  out.residual = norm(subtract(a * x, b));
  return out;
}

double nnls_single(std::span<const double> f, std::span<const double> b) {
  // Serial accumulation, same order as numeric::dot on vectors.
  double ff = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    ff += f[i] * f[i];
  }
  if (ff <= 0.0) {
    return 0.0;
  }
  double fb = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    fb += f[i] * b[i];
  }
  return std::max(0.0, fb / ff);
}

}  // namespace fluxfp::numeric
