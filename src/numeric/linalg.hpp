#pragma once

#include <optional>
#include <vector>

#include "numeric/matrix.hpp"

namespace fluxfp::numeric {

/// Solves A x = b for symmetric positive-definite A via Cholesky
/// factorization. Returns std::nullopt if A is not (numerically) SPD or on
/// dimension mismatch.
std::optional<std::vector<double>> cholesky_solve(const Matrix& a,
                                                  const std::vector<double>& b);

/// Least-squares solution of min ||A x - b||_2 for full-column-rank A
/// (rows >= cols) via Householder QR. Returns std::nullopt on rank
/// deficiency or dimension mismatch.
std::optional<std::vector<double>> qr_least_squares(
    const Matrix& a, const std::vector<double>& b);

/// Residual norm ||A x - b||_2.
double residual_norm(const Matrix& a, const std::vector<double>& x,
                     const std::vector<double>& b);

}  // namespace fluxfp::numeric
