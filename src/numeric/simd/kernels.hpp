#pragma once

#include <cstddef>

// Vectorized inner-loop kernels behind a plain-function interface: the
// rest of the tree calls these without ever seeing an intrinsic type, so
// every translation unit outside src/numeric/simd/ compiles identically
// under every backend. The single implementation TU (kernels.cpp) is the
// only file compiled with architecture flags, and always with
// -ffp-contract=off — no hidden FMA contraction can make a "bit-identical
// element-wise kernel" quietly diverge from the scalar formula.
//
// Numeric contract (DESIGN.md §14):
//  * In the scalar backend (FLUXFP_SIMD=OFF), dot()/dot_self_and_b()/
//    scale_rows() run the exact legacy accumulation loops, and the shape
//    kernels report "not handled" so callers take the pre-SIMD scalar
//    path: a scalar build is bit-identical to the pre-SIMD tree. This is
//    the strict-determinism mode.
//  * In a vector backend, the shape kernels are element-wise over lanes
//    with the same operation sequence as FluxModel::shape, so their
//    outputs are bit-identical to the scalar formula; dot products use
//    multi-lane accumulators, which changes the summation ORDER (not the
//    inputs) — those results are equivalence-tested under a tolerance,
//    never assumed bit-equal across backends.
//  * Non-finite inputs (NaN missing-reading sentinels, inf) are detected
//    via lane masks and make the shape kernels return false; out[] may
//    hold partial results for the lane groups already processed. The
//    caller falls back to the scalar loop, which preserves the legacy
//    throw-on-non-finite behavior exactly (and itself leaves partial
//    writes behind when it throws).

namespace fluxfp::numeric::simd {

/// True when a vector backend (AVX2/SSE2/NEON) was selected at configure
/// time; false for the scalar strict-determinism build.
bool enabled();

/// "avx2", "sse2", "neon", or "scalar".
const char* backend_name();

/// Vector width in doubles (1 for the scalar backend).
std::size_t lane_count();

/// sum_i a[i] * b[i]. Scalar backend: the legacy serial accumulation.
double dot(const double* a, const double* b, std::size_t n);

/// One-pass fused self- and cross-product: *self_out = sum x[i]^2,
/// *xb_out = sum x[i] * b[i]. The two accumulations are independent, so
/// the scalar backend's fused loop is bit-identical to two separate
/// legacy loops.
void dot_self_and_b(const double* x, const double* b, std::size_t n,
                    double* self_out, double* xb_out);

/// out[i] *= scale[i] — the reweighted-objective row scaling.
void scale_rows(double* out, const double* scale, std::size_t n);

/// Rectangular-field shape row: out[i] = phi(sink, q_i) for the
/// [0,width] x [0,height] field, where (sx, sy) is the raw sink,
/// (px, py) = clamp(sink) and l_degenerate is the field's
/// nearest-boundary distance at the clamped sink (the q == p ray
/// fallback). Returns false — leaving out[] in an unspecified state — when
/// the backend is scalar or any input coordinate is non-finite; the caller
/// must then run the scalar FluxModel::shape loop.
bool rect_shape_row(double sx, double sy, double px, double py, double width,
                    double height, double d_min, double l_degenerate,
                    const double* qx, const double* qy, std::size_t n,
                    double* out);

/// Circular-field shape row; (cx, cy) is the field center, radius its
/// radius. Same contract as rect_shape_row.
bool circle_shape_row(double sx, double sy, double px, double py, double cx,
                      double cy, double radius, double d_min,
                      double l_degenerate, const double* qx, const double* qy,
                      std::size_t n, double* out);

/// RSS link-attenuation shape row (core::RssLinkModel): out[i] is the
/// ellipse-gated link-shadowing weight of the sink (sx, sy) on the link
/// with endpoints (ax[i], ay[i])-(bx[i], by[i]). Same return-false
/// contract as rect_shape_row (scalar backend or non-finite endpoint).
bool rss_link_shape_row(double sx, double sy, double inv_lambda,
                        double min_link, const double* ax, const double* ay,
                        const double* bx, const double* by, std::size_t n,
                        double* out);

/// Passive-detection shape row (core::PassiveTraceModel): out[i] is the
/// truncated-quadratic detection kernel of the sink (sx, sy) at the
/// sniffer (ax[i], ay[i]), inv_r2 = 1 / R^2. Same return-false contract
/// as rect_shape_row.
bool detect_shape_row(double sx, double sy, double inv_r2, const double* ax,
                      const double* ay, std::size_t n, double* out);

}  // namespace fluxfp::numeric::simd
