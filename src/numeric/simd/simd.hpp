#pragma once

// The portable fixed-width SIMD vocabulary: DoubleVec, kLanes, and the
// element-wise operations the kernels compose. This is the ONLY header in
// the tree allowed to include raw intrinsic headers — the fluxfp-lint
// no-raw-intrinsics rule confines <immintrin.h>/<arm_neon.h> and compiler
// vector builtins to src/numeric/simd/ so backend portability stays
// auditable in one place.
//
// Backend selection happens at configure time (cmake/Simd.cmake): exactly
// one of FLUXFP_SIMD_AVX2 / FLUXFP_SIMD_SSE2 / FLUXFP_SIMD_NEON is defined
// for the kernel translation unit, or none for the scalar fallback. Only
// kernels.cpp may include this header; everything else consumes the plain
// function interface in kernels.hpp, so the rest of the tree compiles
// identically under every backend.
//
// Semantics notes (these are what the equivalence tests pin):
//  * add/sub/mul/div/sqrt are IEEE-754 correctly rounded per lane, so an
//    element-wise kernel produces bit-identical values to the scalar code
//    it replaces (the kernel TU is compiled with -ffp-contract=off, so no
//    backend sneaks an FMA into a formula the scalar path evaluates with
//    separate roundings).
//  * min/max follow the hardware select semantics: (a OP b) ? a : b, with
//    the second operand returned on a NaN. Kernels must therefore order
//    operands so NaNs cannot reach a min/max whose result survives — the
//    shape kernels reject non-finite inputs up front instead.
//  * Comparisons produce full-lane masks; blend(mask, a, b) selects a
//    where the mask is set, b elsewhere.

#include <cmath>
#include <cstddef>

#if defined(FLUXFP_SIMD_AVX2)
#include <immintrin.h>
#elif defined(FLUXFP_SIMD_SSE2)
#include <emmintrin.h>
#elif defined(FLUXFP_SIMD_NEON)
#include <arm_neon.h>
#endif

namespace fluxfp::numeric::simd {

#if defined(FLUXFP_SIMD_AVX2)

inline constexpr std::size_t kLanes = 4;
inline constexpr bool kVectorBackend = true;
inline constexpr const char* kBackendName = "avx2";

struct DoubleVec {
  __m256d v;
};

inline DoubleVec load(const double* p) { return {_mm256_loadu_pd(p)}; }
inline void store(double* p, DoubleVec a) { _mm256_storeu_pd(p, a.v); }
inline DoubleVec broadcast(double x) { return {_mm256_set1_pd(x)}; }
inline DoubleVec zero() { return {_mm256_setzero_pd()}; }
inline DoubleVec add(DoubleVec a, DoubleVec b) {
  return {_mm256_add_pd(a.v, b.v)};
}
inline DoubleVec sub(DoubleVec a, DoubleVec b) {
  return {_mm256_sub_pd(a.v, b.v)};
}
inline DoubleVec mul(DoubleVec a, DoubleVec b) {
  return {_mm256_mul_pd(a.v, b.v)};
}
inline DoubleVec div(DoubleVec a, DoubleVec b) {
  return {_mm256_div_pd(a.v, b.v)};
}
inline DoubleVec sqrt(DoubleVec a) { return {_mm256_sqrt_pd(a.v)}; }
inline DoubleVec min(DoubleVec a, DoubleVec b) {
  return {_mm256_min_pd(a.v, b.v)};
}
inline DoubleVec max(DoubleVec a, DoubleVec b) {
  return {_mm256_max_pd(a.v, b.v)};
}
/// Exact IEEE negation (sign-bit flip; -0.0 behaves like scalar `-x`).
inline DoubleVec neg(DoubleVec a) {
  return {_mm256_xor_pd(a.v, _mm256_set1_pd(-0.0))};
}

struct LaneMask {
  __m256d m;
};

inline LaneMask cmp_gt(DoubleVec a, DoubleVec b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)};
}
inline LaneMask cmp_lt(DoubleVec a, DoubleVec b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
}
inline LaneMask cmp_eq(DoubleVec a, DoubleVec b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_EQ_OQ)};
}
inline LaneMask mask_and(LaneMask a, LaneMask b) {
  return {_mm256_and_pd(a.m, b.m)};
}
/// a where the mask lane is set, b elsewhere.
inline DoubleVec blend(LaneMask mask, DoubleVec a, DoubleVec b) {
  return {_mm256_blendv_pd(b.v, a.v, mask.m)};
}
inline bool all_lanes(LaneMask mask) {
  return _mm256_movemask_pd(mask.m) == 0xF;
}
inline bool any_lane(LaneMask mask) {
  return _mm256_movemask_pd(mask.m) != 0;
}
/// Deterministic horizontal sum: ((l0 + l1) + (l2 + l3)) regardless of
/// build flags — the reduction order is part of the numeric contract.
inline double reduce_add(DoubleVec a) {
  const __m128d lo = _mm256_castpd256_pd128(a.v);
  const __m128d hi = _mm256_extractf128_pd(a.v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);  // {l0+l2, l1+l3}
  const __m128d swap = _mm_unpackhi_pd(pair, pair);
  return _mm_cvtsd_f64(_mm_add_sd(pair, swap));  // (l0+l2) + (l1+l3)
}

#elif defined(FLUXFP_SIMD_SSE2)

inline constexpr std::size_t kLanes = 2;
inline constexpr bool kVectorBackend = true;
inline constexpr const char* kBackendName = "sse2";

struct DoubleVec {
  __m128d v;
};

inline DoubleVec load(const double* p) { return {_mm_loadu_pd(p)}; }
inline void store(double* p, DoubleVec a) { _mm_storeu_pd(p, a.v); }
inline DoubleVec broadcast(double x) { return {_mm_set1_pd(x)}; }
inline DoubleVec zero() { return {_mm_setzero_pd()}; }
inline DoubleVec add(DoubleVec a, DoubleVec b) { return {_mm_add_pd(a.v, b.v)}; }
inline DoubleVec sub(DoubleVec a, DoubleVec b) { return {_mm_sub_pd(a.v, b.v)}; }
inline DoubleVec mul(DoubleVec a, DoubleVec b) { return {_mm_mul_pd(a.v, b.v)}; }
inline DoubleVec div(DoubleVec a, DoubleVec b) { return {_mm_div_pd(a.v, b.v)}; }
inline DoubleVec sqrt(DoubleVec a) { return {_mm_sqrt_pd(a.v)}; }
inline DoubleVec min(DoubleVec a, DoubleVec b) { return {_mm_min_pd(a.v, b.v)}; }
inline DoubleVec max(DoubleVec a, DoubleVec b) { return {_mm_max_pd(a.v, b.v)}; }
inline DoubleVec neg(DoubleVec a) {
  return {_mm_xor_pd(a.v, _mm_set1_pd(-0.0))};
}

struct LaneMask {
  __m128d m;
};

inline LaneMask cmp_gt(DoubleVec a, DoubleVec b) {
  return {_mm_cmpgt_pd(a.v, b.v)};
}
inline LaneMask cmp_lt(DoubleVec a, DoubleVec b) {
  return {_mm_cmplt_pd(a.v, b.v)};
}
inline LaneMask cmp_eq(DoubleVec a, DoubleVec b) {
  return {_mm_cmpeq_pd(a.v, b.v)};
}
inline LaneMask mask_and(LaneMask a, LaneMask b) {
  return {_mm_and_pd(a.m, b.m)};
}
inline DoubleVec blend(LaneMask mask, DoubleVec a, DoubleVec b) {
  return {_mm_or_pd(_mm_and_pd(mask.m, a.v), _mm_andnot_pd(mask.m, b.v))};
}
inline bool all_lanes(LaneMask mask) { return _mm_movemask_pd(mask.m) == 0x3; }
inline bool any_lane(LaneMask mask) { return _mm_movemask_pd(mask.m) != 0; }
inline double reduce_add(DoubleVec a) {
  const __m128d swap = _mm_unpackhi_pd(a.v, a.v);
  return _mm_cvtsd_f64(_mm_add_sd(a.v, swap));  // l0 + l1
}

#elif defined(FLUXFP_SIMD_NEON)

inline constexpr std::size_t kLanes = 2;
inline constexpr bool kVectorBackend = true;
inline constexpr const char* kBackendName = "neon";

struct DoubleVec {
  float64x2_t v;
};

inline DoubleVec load(const double* p) { return {vld1q_f64(p)}; }
inline void store(double* p, DoubleVec a) { vst1q_f64(p, a.v); }
inline DoubleVec broadcast(double x) { return {vdupq_n_f64(x)}; }
inline DoubleVec zero() { return {vdupq_n_f64(0.0)}; }
inline DoubleVec add(DoubleVec a, DoubleVec b) { return {vaddq_f64(a.v, b.v)}; }
inline DoubleVec sub(DoubleVec a, DoubleVec b) { return {vsubq_f64(a.v, b.v)}; }
inline DoubleVec mul(DoubleVec a, DoubleVec b) { return {vmulq_f64(a.v, b.v)}; }
inline DoubleVec div(DoubleVec a, DoubleVec b) { return {vdivq_f64(a.v, b.v)}; }
inline DoubleVec sqrt(DoubleVec a) { return {vsqrtq_f64(a.v)}; }
/// NEON vminq/vmaxq propagate NaN from either operand; emulate the x86
/// "(a OP b) ? a : b" select so every backend shares one semantic.
inline DoubleVec min(DoubleVec a, DoubleVec b) {
  return {vbslq_f64(vcltq_f64(a.v, b.v), a.v, b.v)};
}
inline DoubleVec max(DoubleVec a, DoubleVec b) {
  return {vbslq_f64(vcgtq_f64(a.v, b.v), a.v, b.v)};
}
inline DoubleVec neg(DoubleVec a) { return {vnegq_f64(a.v)}; }

struct LaneMask {
  uint64x2_t m;
};

inline LaneMask cmp_gt(DoubleVec a, DoubleVec b) {
  return {vcgtq_f64(a.v, b.v)};
}
inline LaneMask cmp_lt(DoubleVec a, DoubleVec b) {
  return {vcltq_f64(a.v, b.v)};
}
inline LaneMask cmp_eq(DoubleVec a, DoubleVec b) {
  return {vceqq_f64(a.v, b.v)};
}
inline LaneMask mask_and(LaneMask a, LaneMask b) {
  return {vandq_u64(a.m, b.m)};
}
inline DoubleVec blend(LaneMask mask, DoubleVec a, DoubleVec b) {
  return {vbslq_f64(mask.m, a.v, b.v)};
}
inline bool all_lanes(LaneMask mask) {
  return vgetq_lane_u64(mask.m, 0) != 0 && vgetq_lane_u64(mask.m, 1) != 0;
}
inline bool any_lane(LaneMask mask) {
  return vgetq_lane_u64(mask.m, 0) != 0 || vgetq_lane_u64(mask.m, 1) != 0;
}
inline double reduce_add(DoubleVec a) {
  return vgetq_lane_f64(a.v, 0) + vgetq_lane_f64(a.v, 1);  // l0 + l1
}

#else  // scalar fallback

inline constexpr std::size_t kLanes = 1;
inline constexpr bool kVectorBackend = false;
inline constexpr const char* kBackendName = "scalar";

struct DoubleVec {
  double v;
};

inline DoubleVec load(const double* p) { return {*p}; }
inline void store(double* p, DoubleVec a) { *p = a.v; }
inline DoubleVec broadcast(double x) { return {x}; }
inline DoubleVec zero() { return {0.0}; }
inline DoubleVec add(DoubleVec a, DoubleVec b) { return {a.v + b.v}; }
inline DoubleVec sub(DoubleVec a, DoubleVec b) { return {a.v - b.v}; }
inline DoubleVec mul(DoubleVec a, DoubleVec b) { return {a.v * b.v}; }
inline DoubleVec div(DoubleVec a, DoubleVec b) { return {a.v / b.v}; }
inline DoubleVec sqrt(DoubleVec a) { return {std::sqrt(a.v)}; }
inline DoubleVec min(DoubleVec a, DoubleVec b) {
  return {a.v < b.v ? a.v : b.v};
}
inline DoubleVec max(DoubleVec a, DoubleVec b) {
  return {a.v > b.v ? a.v : b.v};
}
inline DoubleVec neg(DoubleVec a) { return {-a.v}; }

struct LaneMask {
  bool m;
};

inline LaneMask cmp_gt(DoubleVec a, DoubleVec b) { return {a.v > b.v}; }
inline LaneMask cmp_lt(DoubleVec a, DoubleVec b) { return {a.v < b.v}; }
inline LaneMask cmp_eq(DoubleVec a, DoubleVec b) { return {a.v == b.v}; }
inline LaneMask mask_and(LaneMask a, LaneMask b) { return {a.m && b.m}; }
inline DoubleVec blend(LaneMask mask, DoubleVec a, DoubleVec b) {
  return {mask.m ? a.v : b.v};
}
inline bool all_lanes(LaneMask mask) { return mask.m; }
inline bool any_lane(LaneMask mask) { return mask.m; }
inline double reduce_add(DoubleVec a) { return a.v; }

#endif

/// NaN/missing-reading lane mask: set where the lane holds a finite value.
/// x - x is 0 for finite lanes and NaN for NaN/inf lanes, so a single
/// subtract + compare classifies all four lanes (net::kMissingReading is a
/// quiet NaN and lands in the "not finite" side, preserving its
/// sentinel-ness bit for bit — masked lanes are never folded into a fit).
inline LaneMask finite_mask(DoubleVec a) {
  return cmp_eq(sub(a, a), zero());
}

}  // namespace fluxfp::numeric::simd
