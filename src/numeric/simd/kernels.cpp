// The only translation unit compiled with architecture flags (see
// cmake/Simd.cmake), and always with -ffp-contract=off: every formula here
// must round exactly like its scalar counterpart, so the compiler may not
// fuse multiply-adds behind our back.

#include "numeric/simd/kernels.hpp"

#include <cmath>
#include <limits>

#include "numeric/simd/simd.hpp"

namespace fluxfp::numeric::simd {

bool enabled() { return kVectorBackend; }

const char* backend_name() { return kBackendName; }

std::size_t lane_count() { return kLanes; }

double dot(const double* a, const double* b, std::size_t n) {
  if (!kVectorBackend) {
    // Strict-determinism mode: the legacy serial accumulation, bit for bit.
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += a[i] * b[i];
    }
    return acc;
  }
  // Two independent accumulators hide the add latency; the reduction order
  // (acc0 of even groups, acc1 of odd groups, then (acc0+acc1) summed
  // lane-pair-wise) is fixed and deterministic, but it differs from the
  // serial order — dot results are tolerance-tested across backends.
  DoubleVec acc0 = zero();
  DoubleVec acc1 = zero();
  std::size_t i = 0;
  for (; i + 2 * kLanes <= n; i += 2 * kLanes) {
    acc0 = add(acc0, mul(load(a + i), load(b + i)));
    acc1 = add(acc1, mul(load(a + i + kLanes), load(b + i + kLanes)));
  }
  if (i + kLanes <= n) {
    acc0 = add(acc0, mul(load(a + i), load(b + i)));
    i += kLanes;
  }
  double total = reduce_add(add(acc0, acc1));
  for (; i < n; ++i) {
    total += a[i] * b[i];
  }
  return total;
}

void dot_self_and_b(const double* x, const double* b, std::size_t n,
                    double* self_out, double* xb_out) {
  if (!kVectorBackend) {
    // Identical to two legacy loops: the accumulations are independent.
    double self = 0.0;
    double xb = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      self += x[i] * x[i];
      xb += x[i] * b[i];
    }
    *self_out = self;
    *xb_out = xb;
    return;
  }
  DoubleVec self_acc = zero();
  DoubleVec xb_acc = zero();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const DoubleVec xv = load(x + i);
    self_acc = add(self_acc, mul(xv, xv));
    xb_acc = add(xb_acc, mul(xv, load(b + i)));
  }
  double self = reduce_add(self_acc);
  double xb = reduce_add(xb_acc);
  for (; i < n; ++i) {
    self += x[i] * x[i];
    xb += x[i] * b[i];
  }
  *self_out = self;
  *xb_out = xb;
}

void scale_rows(double* out, const double* scale, std::size_t n) {
  // Element-wise multiply: bit-identical in every backend.
  std::size_t i = 0;
  if (kVectorBackend) {
    for (; i + kLanes <= n; i += kLanes) {
      store(out + i, mul(load(out + i), load(scale + i)));
    }
  }
  for (; i < n; ++i) {
    out[i] *= scale[i];
  }
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Scalar replica of FluxModel::shape for the rectangular field, used for
/// remainder lanes. Operation-for-operation the same as the legacy
/// composition (distance -> RectField::boundary_distance -> cap), so tail
/// elements are bit-identical to full vector lanes AND to the scalar path.
/// Returns false on a non-finite node coordinate.
inline bool rect_shape_tail(double sx, double sy, double px, double py,
                            double width, double height, double d_min,
                            double l_degenerate, double qx, double qy,
                            double* out) {
  if (!std::isfinite(qx) || !std::isfinite(qy)) {
    return false;
  }
  const double ddx = sx - qx;
  const double ddy = sy - qy;
  const double d = std::sqrt(ddx * ddx + ddy * ddy);
  const double rx = qx - px;
  const double ry = qy - py;
  const double n2 = rx * rx + ry * ry;
  double l = l_degenerate;
  if (n2 > 0.0) {
    const double nrm = std::sqrt(rx * rx + ry * ry);
    const double ux = rx / nrm;
    const double uy = ry / nrm;
    double t_exit = kInf;
    if (ux > 0.0) {
      t_exit = std::min(t_exit, (width - px) / ux);
    } else if (ux < 0.0) {
      t_exit = std::min(t_exit, -px / ux);
    }
    if (uy > 0.0) {
      t_exit = std::min(t_exit, (height - py) / uy);
    } else if (uy < 0.0) {
      t_exit = std::min(t_exit, -py / uy);
    }
    l = std::max(t_exit, 0.0);
  }
  const double l2_minus_d2 = std::max(l * l - d * d, 0.0);
  *out = l2_minus_d2 / (2.0 * std::max(d, d_min));
  return true;
}

/// Scalar replica of the circular-field shape (distance ->
/// CircleField::boundary_distance -> cap). `c_const` = |p-center|^2 - R^2.
inline bool circle_shape_tail(double sx, double sy, double px, double py,
                              double ocx, double ocy, double c_const,
                              double d_min, double l_degenerate, double qx,
                              double qy, double* out) {
  if (!std::isfinite(qx) || !std::isfinite(qy)) {
    return false;
  }
  const double ddx = sx - qx;
  const double ddy = sy - qy;
  const double d = std::sqrt(ddx * ddx + ddy * ddy);
  const double rx = qx - px;
  const double ry = qy - py;
  const double n2 = rx * rx + ry * ry;
  double l = l_degenerate;
  if (n2 > 0.0) {
    const double nrm = std::sqrt(rx * rx + ry * ry);
    const double ux = rx / nrm;
    const double uy = ry / nrm;
    const double b = ux * ocx + uy * ocy;
    const double disc = std::max(b * b - c_const, 0.0);
    l = std::max(-b + std::sqrt(disc), 0.0);
  }
  const double l2_minus_d2 = std::max(l * l - d * d, 0.0);
  *out = l2_minus_d2 / (2.0 * std::max(d, d_min));
  return true;
}

/// Scalar replica of RssLinkModel::site_shape for remainder lanes —
/// operation-for-operation the same sequence as the model's scalar path,
/// so tail elements are bit-identical to full vector lanes AND to the
/// scalar fallback loop. Returns false on a non-finite endpoint.
inline bool rss_link_tail(double sx, double sy, double inv_lambda,
                          double min_link, double ax, double ay, double bx,
                          double by, double* out) {
  if (!std::isfinite(ax) || !std::isfinite(ay) || !std::isfinite(bx) ||
      !std::isfinite(by)) {
    return false;
  }
  const double dax = sx - ax;
  const double day = sy - ay;
  const double da = std::sqrt(dax * dax + day * day);
  const double dbx = sx - bx;
  const double dby = sy - by;
  const double db = std::sqrt(dbx * dbx + dby * dby);
  const double abx = ax - bx;
  const double aby = ay - by;
  const double dab = std::sqrt(abx * abx + aby * aby);
  const double excess = (da + db - dab) * inv_lambda;
  const double gate = std::max(1.0 - excess, 0.0);
  *out = gate / std::sqrt(std::max(dab, min_link));
  return true;
}

/// Scalar replica of PassiveTraceModel::site_shape for remainder lanes.
inline bool detect_tail(double sx, double sy, double inv_r2, double ax,
                        double ay, double* out) {
  if (!std::isfinite(ax) || !std::isfinite(ay)) {
    return false;
  }
  const double dx = sx - ax;
  const double dy = sy - ay;
  const double d2 = dx * dx + dy * dy;
  *out = std::max(1.0 - d2 * inv_r2, 0.0);
  return true;
}

}  // namespace

bool rect_shape_row(double sx, double sy, double px, double py, double width,
                    double height, double d_min, double l_degenerate,
                    const double* qx, const double* qy, std::size_t n,
                    double* out) {
  if (!kVectorBackend) {
    return false;  // strict-determinism mode: caller runs the legacy loop
  }
  const DoubleVec vsx = broadcast(sx);
  const DoubleVec vsy = broadcast(sy);
  const DoubleVec vpx = broadcast(px);
  const DoubleVec vpy = broadcast(py);
  // (width - px) and -px are per-row constants; hoisting them out of the
  // loop reproduces the per-element scalar arithmetic exactly because the
  // operands never change.
  const DoubleVec vwx = broadcast(width - px);
  const DoubleVec vnx = broadcast(-px);
  const DoubleVec vhy = broadcast(height - py);
  const DoubleVec vny = broadcast(-py);
  const DoubleVec vldeg = broadcast(l_degenerate);
  const DoubleVec vdmin = broadcast(d_min);
  const DoubleVec vtwo = broadcast(2.0);
  const DoubleVec vinf = broadcast(kInf);
  const DoubleVec vzero = zero();

  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const DoubleVec x = load(qx + i);
    const DoubleVec y = load(qy + i);
    // NaN/inf nodes as a lane mask: any bad lane aborts the whole row so
    // the caller's scalar loop can reproduce the legacy throw.
    if (!all_lanes(mask_and(finite_mask(x), finite_mask(y)))) {
      return false;
    }
    const DoubleVec ddx = sub(vsx, x);
    const DoubleVec ddy = sub(vsy, y);
    const DoubleVec d = sqrt(add(mul(ddx, ddx), mul(ddy, ddy)));
    const DoubleVec rx = sub(x, vpx);
    const DoubleVec ry = sub(y, vpy);
    const DoubleVec n2 = add(mul(rx, rx), mul(ry, ry));
    const DoubleVec nrm = sqrt(n2);
    const DoubleVec ux = div(rx, nrm);
    const DoubleVec uy = div(ry, nrm);
    // Slab exits: numerator (width-px) for ux > 0, -px for ux < 0; a zero
    // component leaves that axis at +inf exactly like the scalar branches.
    DoubleVec tx = div(blend(cmp_gt(ux, vzero), vwx, vnx), ux);
    tx = blend(cmp_eq(ux, vzero), vinf, tx);
    DoubleVec ty = div(blend(cmp_gt(uy, vzero), vhy, vny), uy);
    ty = blend(cmp_eq(uy, vzero), vinf, ty);
    const DoubleVec t_exit = min(min(vinf, tx), ty);
    const DoubleVec l_ray = max(t_exit, vzero);
    // Degenerate node == clamped-sink lanes take the nearest-boundary
    // fallback, exactly like boundary_distance_through.
    const DoubleVec l = blend(cmp_gt(n2, vzero), l_ray, vldeg);
    const DoubleVec l2md2 = max(sub(mul(l, l), mul(d, d)), vzero);
    store(out + i, div(l2md2, mul(vtwo, max(d, vdmin))));
  }
  for (; i < n; ++i) {
    if (!rect_shape_tail(sx, sy, px, py, width, height, d_min, l_degenerate,
                         qx[i], qy[i], out + i)) {
      return false;
    }
  }
  return true;
}

bool circle_shape_row(double sx, double sy, double px, double py, double cx,
                      double cy, double radius, double d_min,
                      double l_degenerate, const double* qx, const double* qy,
                      std::size_t n, double* out) {
  if (!kVectorBackend) {
    return false;
  }
  // oc = clamped sink - center and c = |oc|^2 - R^2 are per-row scalars,
  // computed with the same expressions as CircleField::boundary_distance.
  const double ocx = px - cx;
  const double ocy = py - cy;
  const double c_const = (ocx * ocx + ocy * ocy) - radius * radius;
  const DoubleVec vsx = broadcast(sx);
  const DoubleVec vsy = broadcast(sy);
  const DoubleVec vpx = broadcast(px);
  const DoubleVec vpy = broadcast(py);
  const DoubleVec vocx = broadcast(ocx);
  const DoubleVec vocy = broadcast(ocy);
  const DoubleVec vc = broadcast(c_const);
  const DoubleVec vldeg = broadcast(l_degenerate);
  const DoubleVec vdmin = broadcast(d_min);
  const DoubleVec vtwo = broadcast(2.0);
  const DoubleVec vzero = zero();

  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const DoubleVec x = load(qx + i);
    const DoubleVec y = load(qy + i);
    if (!all_lanes(mask_and(finite_mask(x), finite_mask(y)))) {
      return false;
    }
    const DoubleVec ddx = sub(vsx, x);
    const DoubleVec ddy = sub(vsy, y);
    const DoubleVec d = sqrt(add(mul(ddx, ddx), mul(ddy, ddy)));
    const DoubleVec rx = sub(x, vpx);
    const DoubleVec ry = sub(y, vpy);
    const DoubleVec n2 = add(mul(rx, rx), mul(ry, ry));
    const DoubleVec nrm = sqrt(n2);
    const DoubleVec ux = div(rx, nrm);
    const DoubleVec uy = div(ry, nrm);
    const DoubleVec b = add(mul(ux, vocx), mul(uy, vocy));
    const DoubleVec disc = max(sub(mul(b, b), vc), vzero);
    const DoubleVec l_ray = max(add(neg(b), sqrt(disc)), vzero);
    const DoubleVec l = blend(cmp_gt(n2, vzero), l_ray, vldeg);
    const DoubleVec l2md2 = max(sub(mul(l, l), mul(d, d)), vzero);
    store(out + i, div(l2md2, mul(vtwo, max(d, vdmin))));
  }
  for (; i < n; ++i) {
    if (!circle_shape_tail(sx, sy, px, py, ocx, ocy, c_const, d_min,
                           l_degenerate, qx[i], qy[i], out + i)) {
      return false;
    }
  }
  return true;
}

bool rss_link_shape_row(double sx, double sy, double inv_lambda,
                        double min_link, const double* ax, const double* ay,
                        const double* bx, const double* by, std::size_t n,
                        double* out) {
  if (!kVectorBackend) {
    return false;  // strict-determinism mode: caller runs the scalar loop
  }
  const DoubleVec vsx = broadcast(sx);
  const DoubleVec vsy = broadcast(sy);
  const DoubleVec vinvl = broadcast(inv_lambda);
  const DoubleVec vminl = broadcast(min_link);
  const DoubleVec vone = broadcast(1.0);
  const DoubleVec vzero = zero();

  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const DoubleVec eax = load(ax + i);
    const DoubleVec eay = load(ay + i);
    const DoubleVec ebx = load(bx + i);
    const DoubleVec eby = load(by + i);
    if (!all_lanes(mask_and(mask_and(finite_mask(eax), finite_mask(eay)),
                            mask_and(finite_mask(ebx), finite_mask(eby))))) {
      return false;
    }
    const DoubleVec dax = sub(vsx, eax);
    const DoubleVec day = sub(vsy, eay);
    const DoubleVec da = sqrt(add(mul(dax, dax), mul(day, day)));
    const DoubleVec dbx = sub(vsx, ebx);
    const DoubleVec dby = sub(vsy, eby);
    const DoubleVec db = sqrt(add(mul(dbx, dbx), mul(dby, dby)));
    const DoubleVec abx = sub(eax, ebx);
    const DoubleVec aby = sub(eay, eby);
    const DoubleVec dab = sqrt(add(mul(abx, abx), mul(aby, aby)));
    const DoubleVec excess = mul(sub(add(da, db), dab), vinvl);
    const DoubleVec gate = max(sub(vone, excess), vzero);
    store(out + i, div(gate, sqrt(max(dab, vminl))));
  }
  for (; i < n; ++i) {
    if (!rss_link_tail(sx, sy, inv_lambda, min_link, ax[i], ay[i], bx[i],
                       by[i], out + i)) {
      return false;
    }
  }
  return true;
}

bool detect_shape_row(double sx, double sy, double inv_r2, const double* ax,
                      const double* ay, std::size_t n, double* out) {
  if (!kVectorBackend) {
    return false;
  }
  const DoubleVec vsx = broadcast(sx);
  const DoubleVec vsy = broadcast(sy);
  const DoubleVec vinvr2 = broadcast(inv_r2);
  const DoubleVec vone = broadcast(1.0);
  const DoubleVec vzero = zero();

  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const DoubleVec x = load(ax + i);
    const DoubleVec y = load(ay + i);
    if (!all_lanes(mask_and(finite_mask(x), finite_mask(y)))) {
      return false;
    }
    const DoubleVec dx = sub(vsx, x);
    const DoubleVec dy = sub(vsy, y);
    const DoubleVec d2 = add(mul(dx, dx), mul(dy, dy));
    store(out + i, max(sub(vone, mul(d2, vinvr2)), vzero));
  }
  for (; i < n; ++i) {
    if (!detect_tail(sx, sy, inv_r2, ax[i], ay[i], out + i)) {
      return false;
    }
  }
  return true;
}

}  // namespace fluxfp::numeric::simd
