#pragma once

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <vector>

namespace fluxfp::numeric {

/// A dense row-major matrix of doubles. Small and boring on purpose: the
/// NLS/NNLS subproblems in this library are n x K with K <= ~8, so clarity
/// beats blocking/vectorization tricks.
class Matrix {
 public:
  Matrix() = default;
  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Builds from nested initializer data; throws std::invalid_argument on
  /// ragged rows.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access; throws std::out_of_range.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  const std::vector<double>& data() const { return data_; }

  static Matrix identity(std::size_t n);

  Matrix transposed() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix operator*(double k) const;

  /// Matrix-vector product; throws std::invalid_argument on size mismatch.
  std::vector<double> operator*(const std::vector<double>& v) const;

  /// Frobenius norm.
  double frobenius_norm() const;

  friend bool operator==(const Matrix& a, const Matrix& b) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

std::ostream& operator<<(std::ostream& os, const Matrix& m);

/// Euclidean norm of a vector.
double norm(const std::vector<double>& v);
/// Dot product; throws std::invalid_argument on size mismatch.
double dot(const std::vector<double>& a, const std::vector<double>& b);
/// a - b, element-wise; throws std::invalid_argument on size mismatch.
std::vector<double> subtract(const std::vector<double>& a,
                             const std::vector<double>& b);

}  // namespace fluxfp::numeric
