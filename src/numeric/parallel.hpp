#pragma once

#include <cstddef>
#include <functional>

namespace fluxfp::numeric {

/// Worker count the parallel engine will use (always >= 1). Resolution
/// order: the last set_thread_count() value, else the FLUXFP_THREADS
/// environment variable, else std::thread::hardware_concurrency(). A count
/// of 1 means strictly serial execution — no pool is ever spun up.
std::size_t thread_count();

/// Overrides the worker count for subsequent parallel_for calls. 0 means
/// "auto" (hardware_concurrency). Call between parallel regions, not from
/// inside one.
void set_thread_count(std::size_t count);

/// Runs fn(i) once for every i in [begin, end), fanned out over the
/// persistent thread pool in contiguous chunks.
///
/// Determinism contract: fn must be a pure function of its index over
/// shared *read-only* state, writing only to per-index output slots. Under
/// that contract the results are bit-identical for any thread count —
/// every index is evaluated by exactly the same arithmetic, and merging is
/// by index position, never by completion order. Draw all randomness
/// before the call, on the calling thread.
///
/// The first exception thrown by fn is captured and rethrown on the
/// calling thread after the region drains (remaining chunks are skipped).
/// Nested calls from inside a worker run serially inline, so helpers that
/// parallelize internally stay safe to call from parallel regions.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

/// Chunked variant: fn(lo, hi) is invoked over disjoint subranges that
/// exactly cover [begin, end). Use when per-index dispatch overhead
/// matters; the same determinism contract applies per subrange.
void parallel_for_ranges(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn);

/// RAII: marks the calling thread as already inside a parallel region, so
/// every parallel_for it issues degrades to serial inline execution instead
/// of entering the shared pool (exactly as nested calls from pool workers
/// do). Subsystems that own their own worker threads — the streaming
/// TrackerManager — hold one per worker: the pool's run protocol admits a
/// single external caller at a time, and such a worker's parallelism budget
/// is already spent on cross-session sharding. Results are unaffected
/// (the determinism contract makes serial and pooled execution
/// bit-identical); only scheduling changes. Nests safely.
class SerialRegionGuard {
 public:
  SerialRegionGuard();
  ~SerialRegionGuard();
  SerialRegionGuard(const SerialRegionGuard&) = delete;
  SerialRegionGuard& operator=(const SerialRegionGuard&) = delete;

 private:
  bool prev_;
};

}  // namespace fluxfp::numeric
