#include "numeric/hungarian.hpp"

#include <limits>
#include <stdexcept>

namespace fluxfp::numeric {

// Classic O(n^2 m) potentials-based Hungarian algorithm (Jonker-style),
// 1-indexed internally for the sentinel column 0.
std::vector<std::size_t> hungarian_assign(const Matrix& cost) {
  const std::size_t n = cost.rows();
  const std::size_t m = cost.cols();
  if (n == 0 || m == 0 || n > m) {
    throw std::invalid_argument("hungarian_assign: need 0 < rows <= cols");
  }
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0);
  std::vector<double> v(m + 1, 0.0);
  std::vector<std::size_t> way(m + 1, 0);
  std::vector<std::size_t> match(m + 1, 0);  // match[col] = row (1-indexed)

  for (std::size_t i = 1; i <= n; ++i) {
    match[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(m + 1, inf);
    std::vector<bool> used(m + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = match[j0];
      double delta = inf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[match[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (match[j0] != 0);
    // Augment along the alternating path.
    do {
      const std::size_t j1 = way[j0];
      match[j0] = match[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<std::size_t> assignment(n, 0);
  for (std::size_t j = 1; j <= m; ++j) {
    if (match[j] != 0) {
      assignment[match[j] - 1] = j - 1;
    }
  }
  return assignment;
}

double assignment_cost(const Matrix& cost,
                       const std::vector<std::size_t>& assignment) {
  double total = 0.0;
  for (std::size_t r = 0; r < assignment.size(); ++r) {
    total += cost(r, assignment[r]);
  }
  return total;
}

}  // namespace fluxfp::numeric
