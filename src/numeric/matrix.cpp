#include "numeric/matrix.hpp"

#include <cmath>
#include <ostream>

namespace fluxfp::numeric {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ > 0 ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer rows");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at: index out of range");
  }
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at: index out of range");
  }
  return (*this)(r, c);
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 1.0;
  }
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    throw std::invalid_argument("Matrix multiply: dimension mismatch");
  }
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out(r, c) += a * rhs(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix add: dimension mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] += rhs.data_[i];
  }
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix subtract: dimension mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] -= rhs.data_[i];
  }
  return out;
}

Matrix Matrix::operator*(double k) const {
  Matrix out = *this;
  for (double& v : out.data_) {
    v *= k;
  }
  return out;
}

std::vector<double> Matrix::operator*(const std::vector<double>& v) const {
  if (cols_ != v.size()) {
    throw std::invalid_argument("Matrix*vector: dimension mismatch");
  }
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) {
      acc += (*this)(r, c) * v[c];
    }
    out[r] = acc;
  }
  return out;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) {
    acc += v * v;
  }
  return std::sqrt(acc);
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << m(r, c) << (c + 1 < m.cols() ? ", " : "");
    }
    os << (r + 1 < m.rows() ? ";\n" : "]");
  }
  return os;
}

double norm(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) {
    acc += x * x;
  }
  return std::sqrt(acc);
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("dot: size mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

std::vector<double> subtract(const std::vector<double>& a,
                             const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("subtract: size mismatch");
  }
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] - b[i];
  }
  return out;
}

}  // namespace fluxfp::numeric
