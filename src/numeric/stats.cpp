#include "numeric/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace fluxfp::numeric {

double mean(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double acc = 0.0;
  for (double x : xs) {
    acc += x;
  }
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) {
    return 0.0;
  }
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) {
    acc += (x - m) * (x - m);
  }
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double min_value(std::span<const double> xs) {
  if (xs.empty()) {
    throw std::invalid_argument("min_value: empty span");
  }
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  if (xs.empty()) {
    throw std::invalid_argument("max_value: empty span");
  }
  return *std::max_element(xs.begin(), xs.end());
}

double sum(std::span<const double> xs) {
  double acc = 0.0;
  for (double x : xs) {
    acc += x;
  }
  return acc;
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty() || p < 0.0 || p > 1.0) {
    throw std::invalid_argument("percentile: empty sample or p outside [0,1]");
  }
  // NaN compares false against everything, so sorting a NaN-bearing range
  // violates std::sort's strict-weak-order contract: the permutation (and
  // thus every order statistic) would depend on where the NaNs happened to
  // sit. Rank the finite subset instead.
  std::vector<double> sorted;
  sorted.reserve(xs.size());
  for (double x : xs) {
    if (!std::isnan(x)) {
      sorted.push_back(x);
    }
  }
  if (sorted.empty()) {
    throw std::invalid_argument("percentile: every sample is NaN");
  }
  std::sort(sorted.begin(), sorted.end());
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 0.5); }

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::evaluate(double v) const {
  if (sorted_.empty()) {
    return 0.0;
  }
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), v);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double p) const {
  if (sorted_.empty() || p <= 0.0 || p > 1.0) {
    throw std::invalid_argument("EmpiricalCdf::quantile: bad input");
  }
  const std::size_t idx = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted_.size()))) - 1;
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: bad range or zero bins");
  }
}

void Histogram::add(double v) {
  const double t = (v - lo_) / (hi_ - lo_);
  auto bin = static_cast<long>(t * static_cast<double>(counts_.size()));
  bin = std::clamp(bin, 0L, static_cast<long>(counts_.size()) - 1L);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_center(std::size_t i) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * w;
}

double Histogram::fraction(std::size_t i) const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(counts_.at(i)) /
                           static_cast<double>(total_);
}

void RunningStats::add(double v) {
  if (n_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++n_;
  const double delta = v - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (v - mean_);
}

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace fluxfp::numeric
