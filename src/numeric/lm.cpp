#include "numeric/lm.hpp"

#include <cmath>

#include "numeric/linalg.hpp"
#include "numeric/matrix.hpp"

namespace fluxfp::numeric {
namespace {

Matrix numeric_jacobian(const ResidualFn& fn, const std::vector<double>& p,
                        const std::vector<double>& r0, double eps) {
  Matrix j(r0.size(), p.size());
  std::vector<double> pp = p;
  for (std::size_t c = 0; c < p.size(); ++c) {
    const double h = eps * std::max(1.0, std::abs(p[c]));
    pp[c] = p[c] + h;
    const std::vector<double> r1 = fn(pp);
    pp[c] = p[c];
    for (std::size_t rI = 0; rI < r0.size(); ++rI) {
      j(rI, c) = (r1[rI] - r0[rI]) / h;
    }
  }
  return j;
}

double half_sq_norm(const std::vector<double>& r) {
  double acc = 0.0;
  for (double v : r) {
    acc += v * v;
  }
  return 0.5 * acc;
}

}  // namespace

LmResult levenberg_marquardt(const ResidualFn& fn, std::vector<double> initial,
                             const LmOptions& opts) {
  LmResult out;
  out.params = std::move(initial);
  std::vector<double> r = fn(out.params);
  out.cost = half_sq_norm(r);
  double lambda = opts.initial_lambda;

  for (out.iterations = 0; out.iterations < opts.max_iter; ++out.iterations) {
    const Matrix j = numeric_jacobian(fn, out.params, r, opts.jacobian_eps);
    const Matrix jt = j.transposed();
    const Matrix jtj = jt * j;
    const std::vector<double> g = jt * r;  // gradient of 0.5||r||^2

    double gmax = 0.0;
    for (double v : g) {
      gmax = std::max(gmax, std::abs(v));
    }
    if (gmax < opts.gradient_tol) {
      out.converged = true;
      break;
    }

    bool stepped = false;
    for (int tries = 0; tries < 20 && !stepped; ++tries) {
      Matrix damped = jtj;
      for (std::size_t i = 0; i < damped.rows(); ++i) {
        damped(i, i) += lambda * std::max(jtj(i, i), 1e-12);
      }
      std::vector<double> neg_g(g.size());
      for (std::size_t i = 0; i < g.size(); ++i) {
        neg_g[i] = -g[i];
      }
      const auto step = cholesky_solve(damped, neg_g);
      if (!step) {
        lambda *= opts.lambda_up;
        continue;
      }
      std::vector<double> trial = out.params;
      double step_norm = 0.0;
      for (std::size_t i = 0; i < trial.size(); ++i) {
        trial[i] += (*step)[i];
        step_norm += (*step)[i] * (*step)[i];
      }
      step_norm = std::sqrt(step_norm);
      const std::vector<double> r_trial = fn(trial);
      const double cost_trial = half_sq_norm(r_trial);
      if (cost_trial < out.cost) {
        out.params = std::move(trial);
        r = r_trial;
        out.cost = cost_trial;
        lambda = std::max(lambda * opts.lambda_down, 1e-12);
        stepped = true;
        if (step_norm < opts.step_tol) {
          out.converged = true;
          return out;
        }
      } else {
        lambda *= opts.lambda_up;
      }
    }
    if (!stepped) {
      break;  // stuck: every damped step increased the cost
    }
  }
  return out;
}

LmResult gauss_newton(const ResidualFn& fn, std::vector<double> initial,
                      int max_iter, double step_tol) {
  LmResult out;
  out.params = std::move(initial);
  std::vector<double> r = fn(out.params);
  out.cost = half_sq_norm(r);

  for (out.iterations = 0; out.iterations < max_iter; ++out.iterations) {
    const Matrix j = numeric_jacobian(fn, out.params, r, 1e-6);
    std::vector<double> neg_r(r.size());
    for (std::size_t i = 0; i < r.size(); ++i) {
      neg_r[i] = -r[i];
    }
    const auto step = qr_least_squares(j, neg_r);
    if (!step) {
      break;
    }
    double step_norm = 0.0;
    for (std::size_t i = 0; i < out.params.size(); ++i) {
      out.params[i] += (*step)[i];
      step_norm += (*step)[i] * (*step)[i];
    }
    r = fn(out.params);
    out.cost = half_sq_norm(r);
    if (std::sqrt(step_norm) < step_tol) {
      out.converged = true;
      break;
    }
  }
  return out;
}

}  // namespace fluxfp::numeric
