#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace fluxfp::numeric {

/// Epoch-scoped bump allocator for per-step scratch buffers (Gram
/// matrices, residual vectors, IRLS weights, candidate orderings).
///
/// Lifetime rules (DESIGN.md section 14):
///  * alloc() returns storage valid until the next reset() — never hold a
///    span across an epoch boundary.
///  * reset() is O(1) when the high-water mark fits in the head block;
///    otherwise the next alloc() grows a new head block so steady-state
///    epochs allocate nothing.
///  * The arena is NOT thread-safe; each worker uses its own (the
///    localizers keep one per restart thread via thread_local).
///
/// All returns are 64-byte aligned so SIMD kernels can assume cache-line
/// alignment, and value-initialized variants exist for buffers whose
/// legacy equivalent was a zero-filled std::vector.
class Arena {
 public:
  explicit Arena(std::size_t initial_bytes = 1 << 16);
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  // Movable so owners (SmcTracker, StreamTracker) stay movable; moved-from
  // arenas are only good for destruction. Outstanding spans stay valid —
  // the blocks travel with the arena.
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  /// Uninitialized storage for `count` trivially-destructible T.
  template <typename T>
  std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T> &&
                      std::is_trivially_copyable_v<T>,
                  "Arena only holds trivial scratch types");
    void* p = allocate_bytes(count * sizeof(T), alignof(T));
    return {static_cast<T*>(p), count};
  }

  /// Zero-initialized storage (replaces `std::vector<T> v(count)` scratch).
  template <typename T>
  std::span<T> alloc_zeroed(std::size_t count) {
    std::span<T> s = alloc<T>(count);
    for (T& v : s) {
      v = T{};
    }
    return s;
  }

  /// Invalidates every span handed out since the previous reset. Keeps
  /// the head block; coalesces overflow blocks into a bigger head on the
  /// next allocation.
  void reset();

  struct Stats {
    std::size_t block_bytes = 0;      ///< capacity of the head block
    std::size_t used_bytes = 0;       ///< bytes handed out since reset()
    std::size_t high_water_bytes = 0; ///< max used_bytes over all epochs
    std::size_t overflow_blocks = 0;  ///< extra blocks live right now
  };
  Stats stats() const;

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* allocate_bytes(std::size_t bytes, std::size_t align);
  void grow(std::size_t min_bytes);

  Block head_;
  std::vector<Block> overflow_;
  std::size_t offset_ = 0;           // bump pointer within head_
  std::size_t epoch_used_ = 0;       // total bytes since reset()
  std::size_t high_water_ = 0;
};

}  // namespace fluxfp::numeric
