#include "numeric/arena.hpp"

#include <algorithm>

namespace fluxfp::numeric {

namespace {

constexpr std::size_t kArenaAlign = 64;

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

}  // namespace

Arena::Arena(std::size_t initial_bytes) {
  head_.size = std::max<std::size_t>(round_up(initial_bytes, kArenaAlign), kArenaAlign);
  head_.data = std::make_unique<std::byte[]>(head_.size + kArenaAlign);
}

void* Arena::allocate_bytes(std::size_t bytes, std::size_t align) {
  // Every allocation is cache-line aligned; `align` can only be smaller
  // for the trivial types the arena accepts.
  (void)align;
  const std::size_t need = round_up(std::max<std::size_t>(bytes, 1), kArenaAlign);
  // Base of the head block, rounded up to the alignment boundary once.
  auto base = reinterpret_cast<std::uintptr_t>(head_.data.get());
  const std::size_t skew = round_up(base, kArenaAlign) - base;
  if (offset_ + need > head_.size) {
    grow(need);
    base = reinterpret_cast<std::uintptr_t>(overflow_.back().data.get());
    const std::size_t oskew = round_up(base, kArenaAlign) - base;
    epoch_used_ += need;
    high_water_ = std::max(high_water_, epoch_used_);
    return overflow_.back().data.get() + oskew;
  }
  std::byte* p = head_.data.get() + skew + offset_;
  offset_ += need;
  epoch_used_ += need;
  high_water_ = std::max(high_water_, epoch_used_);
  return p;
}

void Arena::grow(std::size_t min_bytes) {
  // Overflow blocks are one-shot: each serves a single oversized request,
  // and reset() folds the accumulated demand into a bigger head block so
  // the overflow path is cold after warm-up.
  Block b;
  b.size = round_up(min_bytes, kArenaAlign);
  b.data = std::make_unique<std::byte[]>(b.size + kArenaAlign);
  overflow_.push_back(std::move(b));
}

void Arena::reset() {
  if (!overflow_.empty() || epoch_used_ > head_.size) {
    // Rebuild the head so the next epoch of the same shape fits in one
    // block. Old blocks die here — all outstanding spans are invalid.
    const std::size_t want =
        std::max(round_up(std::max(high_water_, epoch_used_), kArenaAlign),
                 head_.size);
    overflow_.clear();
    if (want > head_.size) {
      head_.size = want;
      head_.data = std::make_unique<std::byte[]>(head_.size + kArenaAlign);
    }
  }
  offset_ = 0;
  epoch_used_ = 0;
}

Arena::Stats Arena::stats() const {
  return Stats{head_.size, epoch_used_, high_water_, overflow_.size()};
}

}  // namespace fluxfp::numeric
