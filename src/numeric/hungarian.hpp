#pragma once

#include <vector>

#include "numeric/matrix.hpp"

namespace fluxfp::numeric {

/// Minimum-cost perfect assignment on an n x m cost matrix (n <= m):
/// assigns each row to a distinct column minimizing total cost.
/// Returns `assignment[row] = column`. Throws std::invalid_argument when
/// rows > cols or the matrix is empty.
///
/// Used to score multi-user localization irrespective of identity: the
/// paper's tracker may swap identities when trajectories cross (Fig. 7(d))
/// but still reports positional accuracy.
std::vector<std::size_t> hungarian_assign(const Matrix& cost);

/// Total cost of an assignment under `cost`.
double assignment_cost(const Matrix& cost,
                       const std::vector<std::size_t>& assignment);

}  // namespace fluxfp::numeric
