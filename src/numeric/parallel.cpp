#include "numeric/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "obs/instrument.hpp"
#include "support/thread_annotations.hpp"

namespace fluxfp::numeric {
namespace {

/// True on pool workers, and on the calling thread while it executes
/// chunks of a batch. Nested parallel_for calls observe it and degrade to
/// serial inline execution instead of re-entering the pool.
thread_local bool t_in_parallel_region = false;

std::size_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// FLUXFP_THREADS env var, or hardware concurrency when unset/garbage.
std::size_t default_thread_count() {
  if (const char* env = std::getenv("FLUXFP_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') {
      return v == 0 ? hardware_threads() : static_cast<std::size_t>(v);
    }
  }
  return hardware_threads();
}

/// 0 = unresolved (fall back to default_thread_count()).
std::atomic<std::size_t> g_requested{0};

/// One cooperative batch: workers and the caller pull chunk indices from
/// `next` until the range drains. The struct lives on the caller's stack;
/// the caller does not return from run() until every worker has finished
/// touching it.
struct Batch {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t chunk_size = 1;
  std::size_t chunk_count = 0;
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};     // fluxfp-lint: allow(atomics-policy) -- lock-free chunk ticket; taking error_mutex per chunk would serialize the parallel region
  std::atomic<bool> cancelled{false};   // fluxfp-lint: allow(atomics-policy) -- advisory early-exit flag polled per chunk; a stale read costs one extra chunk, never correctness
  support::Mutex error_mutex;
  std::exception_ptr error FLUXFP_GUARDED_BY(error_mutex);

  void work() {
    for (;;) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunk_count || cancelled.load(std::memory_order_relaxed)) {
        return;
      }
      const std::size_t lo = begin + c * chunk_size;
      const std::size_t hi = std::min(end, lo + chunk_size);
      try {
        (*fn)(lo, hi);
      } catch (...) {
        support::MutexLock lock(error_mutex);
        if (!error) {
          error = std::current_exception();
        }
        cancelled.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }

  /// The first exception thrown by any chunk, read under the lock. The
  /// check-in barrier in Pool::run has already happened when the caller
  /// asks, but the lock keeps one access regime (and Clang satisfied).
  std::exception_ptr take_error() {
    support::MutexLock lock(error_mutex);
    return std::exchange(error, nullptr);
  }
};

/// Persistent worker pool. Batches are serialized: run() publishes one
/// batch, every worker processes it exactly once (possibly finding no
/// chunks left), and run() returns only after all workers have checked
/// back in — so the stack-allocated Batch never outlives its region.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(Batch& batch, std::size_t workers_wanted) {
    support::UniqueLock lock(mutex_);
    ensure_workers(workers_wanted);
    current_ = &batch;
    ++generation_;
    active_ = workers_.size();
    lock.unlock();
    work_cv_.notify_all();

    t_in_parallel_region = true;
    batch.work();
    t_in_parallel_region = false;

    lock.lock();
    done_cv_.wait(lock.native(), [&] {
      mutex_.assert_held();  // predicate runs under the re-acquired lock
      return active_ == 0;
    });
    current_ = nullptr;
  }

  ~Pool() {
    // Move the handles out under the lock, then join without it: after
    // stop_ is set no worker touches workers_, and keeping the join outside
    // the critical section means teardown needs no analysis suppression.
    std::vector<std::thread> workers;
    {
      support::MutexLock lock(mutex_);
      stop_ = true;
      ++generation_;
      workers.swap(workers_);
    }
    work_cv_.notify_all();
    for (std::thread& t : workers) {
      t.join();
    }
  }

 private:
  Pool() = default;

  /// Grows (never shrinks) the worker set under the held lock. Extra
  /// workers beyond a batch's wanted count just find no chunks — keeping
  /// the check-in protocol uniform across thread-count changes.
  void ensure_workers(std::size_t wanted) FLUXFP_REQUIRES(mutex_) {
    while (workers_.size() < wanted) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void worker_loop() {
    t_in_parallel_region = true;
    std::uint64_t seen = 0;
    for (;;) {
      Batch* batch = nullptr;
      {
        support::UniqueLock lock(mutex_);
        work_cv_.wait(lock.native(), [&] {
          mutex_.assert_held();  // predicate runs under the lock
          return stop_ || generation_ != seen;
        });
        if (stop_) {
          return;
        }
        seen = generation_;
        batch = current_;
      }
      if (batch != nullptr) {
        batch->work();
      }
      {
        support::MutexLock lock(mutex_);
        if (--active_ == 0) {
          done_cv_.notify_one();
        }
      }
    }
  }

  support::Mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_ FLUXFP_GUARDED_BY(mutex_);
  Batch* current_ FLUXFP_GUARDED_BY(mutex_) = nullptr;
  std::uint64_t generation_ FLUXFP_GUARDED_BY(mutex_) = 0;
  std::size_t active_ FLUXFP_GUARDED_BY(mutex_) = 0;
  bool stop_ FLUXFP_GUARDED_BY(mutex_) = false;
};

}  // namespace

SerialRegionGuard::SerialRegionGuard() : prev_(t_in_parallel_region) {
  t_in_parallel_region = true;
  // Guard count tracks how often callers opt out of the pool; the number of
  // guard-holding threads is a worker-layout fact, hence kScheduling.
  FLUXFP_OBS_COUNTER_INC_SCHED("fluxfp_numeric_serial_region_entries_total",
                               "SerialRegionGuard scopes entered");
}

SerialRegionGuard::~SerialRegionGuard() { t_in_parallel_region = prev_; }

std::size_t thread_count() {
  const std::size_t requested = g_requested.load(std::memory_order_relaxed);
  return requested != 0 ? requested : default_thread_count();
}

void set_thread_count(std::size_t count) {
  g_requested.store(count == 0 ? default_thread_count() : count,
                    std::memory_order_relaxed);
}

void parallel_for_ranges(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) {
    return;
  }
  const std::size_t count = end - begin;
  const std::size_t threads = thread_count();
  // Total call count is content-driven (stable across layouts); how the
  // calls split between the inline-serial and pooled paths is not.
  FLUXFP_OBS_COUNTER_INC("fluxfp_numeric_parallel_calls_total",
                         "parallel_for regions entered");
  if (threads <= 1 || count == 1 || t_in_parallel_region) {
    FLUXFP_OBS_COUNTER_INC_SCHED("fluxfp_numeric_parallel_serial_calls_total",
                                 "Regions degraded to serial inline");
    fn(begin, end);
    return;
  }
  Batch batch;
  batch.begin = begin;
  batch.end = end;
  // ~4 chunks per thread balances scheduling slack against dispatch cost;
  // chunk geometry never affects results, only which thread computes what.
  batch.chunk_size = std::max<std::size_t>(1, count / (threads * 4));
  batch.chunk_count =
      (count + batch.chunk_size - 1) / batch.chunk_size;
  batch.fn = &fn;
  FLUXFP_OBS_COUNTER_INC_SCHED("fluxfp_numeric_parallel_pooled_calls_total",
                               "Regions fanned out over the pool");
  FLUXFP_OBS_COUNTER_ADD_SCHED("fluxfp_numeric_parallel_chunks_total",
                               "Chunks dispatched to pool workers",
                               batch.chunk_count);
  // The caller is one of the workers.
  Pool::instance().run(batch, threads - 1);
  if (std::exception_ptr err = batch.take_error()) {
    std::rethrow_exception(err);
  }
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for_ranges(begin, end, [&fn](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      fn(i);
    }
  });
}

}  // namespace fluxfp::numeric
