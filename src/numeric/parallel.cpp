#include "numeric/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/instrument.hpp"

namespace fluxfp::numeric {
namespace {

/// True on pool workers, and on the calling thread while it executes
/// chunks of a batch. Nested parallel_for calls observe it and degrade to
/// serial inline execution instead of re-entering the pool.
thread_local bool t_in_parallel_region = false;

std::size_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// FLUXFP_THREADS env var, or hardware concurrency when unset/garbage.
std::size_t default_thread_count() {
  if (const char* env = std::getenv("FLUXFP_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') {
      return v == 0 ? hardware_threads() : static_cast<std::size_t>(v);
    }
  }
  return hardware_threads();
}

/// 0 = unresolved (fall back to default_thread_count()).
std::atomic<std::size_t> g_requested{0};

/// One cooperative batch: workers and the caller pull chunk indices from
/// `next` until the range drains. The struct lives on the caller's stack;
/// the caller does not return from run() until every worker has finished
/// touching it.
struct Batch {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t chunk_size = 1;
  std::size_t chunk_count = 0;
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::exception_ptr error;
  std::mutex error_mutex;

  void work() {
    for (;;) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunk_count || cancelled.load(std::memory_order_relaxed)) {
        return;
      }
      const std::size_t lo = begin + c * chunk_size;
      const std::size_t hi = std::min(end, lo + chunk_size);
      try {
        (*fn)(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) {
          error = std::current_exception();
        }
        cancelled.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }
};

/// Persistent worker pool. Batches are serialized: run() publishes one
/// batch, every worker processes it exactly once (possibly finding no
/// chunks left), and run() returns only after all workers have checked
/// back in — so the stack-allocated Batch never outlives its region.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(Batch& batch, std::size_t workers_wanted) {
    std::unique_lock<std::mutex> lock(mutex_);
    ensure_workers(workers_wanted);
    current_ = &batch;
    ++generation_;
    active_ = workers_.size();
    lock.unlock();
    work_cv_.notify_all();

    t_in_parallel_region = true;
    batch.work();
    t_in_parallel_region = false;

    lock.lock();
    done_cv_.wait(lock, [&] { return active_ == 0; });
    current_ = nullptr;
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
      ++generation_;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) {
      t.join();
    }
  }

 private:
  Pool() = default;

  /// Grows (never shrinks) the worker set under the held lock. Extra
  /// workers beyond a batch's wanted count just find no chunks — keeping
  /// the check-in protocol uniform across thread-count changes.
  void ensure_workers(std::size_t wanted) {
    while (workers_.size() < wanted) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void worker_loop() {
    t_in_parallel_region = true;
    std::uint64_t seen = 0;
    for (;;) {
      Batch* batch = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) {
          return;
        }
        seen = generation_;
        batch = current_;
      }
      if (batch != nullptr) {
        batch->work();
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--active_ == 0) {
          done_cv_.notify_one();
        }
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  Batch* current_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace

SerialRegionGuard::SerialRegionGuard() : prev_(t_in_parallel_region) {
  t_in_parallel_region = true;
  // Guard count tracks how often callers opt out of the pool; the number of
  // guard-holding threads is a worker-layout fact, hence kScheduling.
  FLUXFP_OBS_COUNTER_INC_SCHED("fluxfp_numeric_serial_region_entries_total",
                               "SerialRegionGuard scopes entered");
}

SerialRegionGuard::~SerialRegionGuard() { t_in_parallel_region = prev_; }

std::size_t thread_count() {
  const std::size_t requested = g_requested.load(std::memory_order_relaxed);
  return requested != 0 ? requested : default_thread_count();
}

void set_thread_count(std::size_t count) {
  g_requested.store(count == 0 ? default_thread_count() : count,
                    std::memory_order_relaxed);
}

void parallel_for_ranges(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) {
    return;
  }
  const std::size_t count = end - begin;
  const std::size_t threads = thread_count();
  // Total call count is content-driven (stable across layouts); how the
  // calls split between the inline-serial and pooled paths is not.
  FLUXFP_OBS_COUNTER_INC("fluxfp_numeric_parallel_calls_total",
                         "parallel_for regions entered");
  if (threads <= 1 || count == 1 || t_in_parallel_region) {
    FLUXFP_OBS_COUNTER_INC_SCHED("fluxfp_numeric_parallel_serial_calls_total",
                                 "Regions degraded to serial inline");
    fn(begin, end);
    return;
  }
  Batch batch;
  batch.begin = begin;
  batch.end = end;
  // ~4 chunks per thread balances scheduling slack against dispatch cost;
  // chunk geometry never affects results, only which thread computes what.
  batch.chunk_size = std::max<std::size_t>(1, count / (threads * 4));
  batch.chunk_count =
      (count + batch.chunk_size - 1) / batch.chunk_size;
  batch.fn = &fn;
  FLUXFP_OBS_COUNTER_INC_SCHED("fluxfp_numeric_parallel_pooled_calls_total",
                               "Regions fanned out over the pool");
  FLUXFP_OBS_COUNTER_ADD_SCHED("fluxfp_numeric_parallel_chunks_total",
                               "Chunks dispatched to pool workers",
                               batch.chunk_count);
  // The caller is one of the workers.
  Pool::instance().run(batch, threads - 1);
  if (batch.error) {
    std::rethrow_exception(batch.error);
  }
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for_ranges(begin, end, [&fn](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      fn(i);
    }
  });
}

}  // namespace fluxfp::numeric
