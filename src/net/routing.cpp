#include "net/routing.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace fluxfp::net {

std::vector<int> hop_distances(const UnitDiskGraph& graph, std::size_t root) {
  if (root >= graph.size()) {
    throw std::invalid_argument("hop_distances: root out of range");
  }
  std::vector<int> hop(graph.size(), kUnreachableHop);
  std::deque<std::size_t> queue{root};
  hop[root] = 0;
  while (!queue.empty()) {
    const std::size_t cur = queue.front();
    queue.pop_front();
    for (std::size_t nb : graph.neighbors(cur)) {
      if (hop[nb] == kUnreachableHop) {
        hop[nb] = hop[cur] + 1;
        queue.push_back(nb);
      }
    }
  }
  return hop;
}

CollectionTree build_collection_tree(const UnitDiskGraph& graph,
                                     geom::Vec2 sink_position,
                                     geom::Rng& rng) {
  CollectionTree tree;
  tree.sink_position = sink_position;
  tree.root = graph.nearest_node(sink_position);
  tree.hop = hop_distances(graph, tree.root);
  tree.parent.assign(graph.size(), kNoNode);

  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    if (i == tree.root || tree.hop[i] == kUnreachableHop) {
      continue;
    }
    candidates.clear();
    for (std::size_t nb : graph.neighbors(i)) {
      if (tree.hop[nb] == tree.hop[i] - 1) {
        candidates.push_back(nb);
      }
    }
    // BFS guarantees at least one neighbor at hop-1 for reachable nodes.
    std::uniform_int_distribution<std::size_t> pick(0, candidates.size() - 1);
    tree.parent[i] = candidates[pick(rng)];
  }
  return tree;
}

std::vector<std::size_t> subtree_sizes(const CollectionTree& tree) {
  std::vector<std::size_t> size(tree.size(), 0);
  for (std::size_t i : bottom_up_order(tree)) {
    size[i] += 1;  // self
    if (tree.parent[i] != kNoNode) {
      size[tree.parent[i]] += size[i];
    }
  }
  return size;
}

double average_hop_length(const UnitDiskGraph& graph,
                          const CollectionTree& tree) {
  double acc = 0.0;
  std::size_t edges = 0;
  for (std::size_t i = 0; i < tree.size(); ++i) {
    if (tree.parent[i] != kNoNode) {
      acc += geom::distance(graph.position(i), graph.position(tree.parent[i]));
      ++edges;
    }
  }
  return edges > 0 ? acc / static_cast<double>(edges) : 0.0;
}

std::vector<std::size_t> bottom_up_order(const CollectionTree& tree) {
  std::vector<std::size_t> order;
  order.reserve(tree.size());
  for (std::size_t i = 0; i < tree.size(); ++i) {
    if (tree.reachable(i)) {
      order.push_back(i);
    }
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return tree.hop[a] > tree.hop[b];
  });
  return order;
}

}  // namespace fluxfp::net
