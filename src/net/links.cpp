#include "net/links.hpp"

#include <stdexcept>

#include "geom/vec2.hpp"

namespace fluxfp::net {

std::vector<Link> enumerate_links(const UnitDiskGraph& graph,
                                  double max_length) {
  std::vector<Link> links;
  for (std::size_t a = 0; a < graph.size(); ++a) {
    for (std::size_t b : graph.neighbors(a)) {
      if (b <= a) {
        continue;  // undirected edge: keep the a < b orientation only
      }
      if (max_length > 0.0 &&
          geom::distance(graph.position(a), graph.position(b)) > max_length) {
        continue;
      }
      links.push_back(Link{a, b});
    }
  }
  return links;
}

std::vector<double> gather_link_readings(std::span<const double> link_values,
                                         std::span<const std::size_t> links) {
  std::vector<double> readings;
  readings.reserve(links.size());
  for (std::size_t i : links) {
    if (i >= link_values.size()) {
      throw std::invalid_argument(
          "gather_link_readings: link index out of range");
    }
    readings.push_back(link_values[i]);
  }
  return readings;
}

}  // namespace fluxfp::net
