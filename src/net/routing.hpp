#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "geom/sampling.hpp"
#include "net/graph.hpp"

namespace fluxfp::net {

/// Sentinel for "no parent" / "unreachable".
inline constexpr std::size_t kNoNode = std::numeric_limits<std::size_t>::max();

/// BFS hop counts from `root`; kUnreachableHop for disconnected nodes.
inline constexpr int kUnreachableHop = -1;
std::vector<int> hop_distances(const UnitDiskGraph& graph, std::size_t root);

/// A data-collection tree rooted at the node nearest the mobile sink: every
/// node forwards toward the sink along a shortest-hop path, choosing its
/// parent uniformly at random among the neighbors one hop closer to the
/// root (the randomized tie-break models the routing variability the paper
/// smooths over in §3.B).
struct CollectionTree {
  std::size_t root = kNoNode;
  geom::Vec2 sink_position;            ///< actual (off-grid) sink position
  std::vector<std::size_t> parent;     ///< parent[i], kNoNode for root/unreachable
  std::vector<int> hop;                ///< hop[i] from root, kUnreachableHop if cut off

  std::size_t size() const { return parent.size(); }
  bool reachable(std::size_t i) const { return hop[i] >= 0; }
};

/// Builds a collection tree for a sink at `sink_position`.
CollectionTree build_collection_tree(const UnitDiskGraph& graph,
                                     geom::Vec2 sink_position,
                                     geom::Rng& rng);

/// Subtree node counts (each node counts itself); 0 for unreachable nodes.
std::vector<std::size_t> subtree_sizes(const CollectionTree& tree);

/// Mean Euclidean length of the tree's parent-child edges — the empirical
/// average hop distance `r` of the flux model (Eq. 3.4). Returns 0 for a
/// single-node tree.
double average_hop_length(const UnitDiskGraph& graph,
                          const CollectionTree& tree);

/// Nodes ordered by decreasing hop count (children strictly before
/// parents), unreachable nodes excluded. Useful for bottom-up subtree
/// accumulation.
std::vector<std::size_t> bottom_up_order(const CollectionTree& tree);

}  // namespace fluxfp::net
