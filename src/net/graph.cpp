#include "net/graph.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace fluxfp::net {

UnitDiskGraph::UnitDiskGraph(std::vector<geom::Vec2> positions, double radius)
    : positions_(std::move(positions)), radius_(radius) {
  if (positions_.empty()) {
    throw std::invalid_argument("UnitDiskGraph: no nodes");
  }
  if (!(radius > 0.0)) {
    throw std::invalid_argument("UnitDiskGraph: radius must be positive");
  }
  build_index();
  build_adjacency();
}

void UnitDiskGraph::build_index() {
  double max_x = positions_[0].x;
  double max_y = positions_[0].y;
  min_x_ = positions_[0].x;
  min_y_ = positions_[0].y;
  for (const auto& p : positions_) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  cell_ = radius_;
  grid_w_ = static_cast<std::size_t>((max_x - min_x_) / cell_) + 1;
  grid_h_ = static_cast<std::size_t>((max_y - min_y_) / cell_) + 1;
  buckets_.assign(grid_w_ * grid_h_, {});
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    buckets_[bucket_of(positions_[i])].push_back(i);
  }
}

std::size_t UnitDiskGraph::bucket_of(geom::Vec2 p) const {
  auto gx = static_cast<std::size_t>(
      std::clamp((p.x - min_x_) / cell_, 0.0,
                 static_cast<double>(grid_w_ - 1)));
  auto gy = static_cast<std::size_t>(
      std::clamp((p.y - min_y_) / cell_, 0.0,
                 static_cast<double>(grid_h_ - 1)));
  return gy * grid_w_ + gx;
}

void UnitDiskGraph::build_adjacency() {
  adjacency_.assign(positions_.size(), {});
  const double r2 = radius_ * radius_;
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    const geom::Vec2 p = positions_[i];
    const long gx = static_cast<long>((p.x - min_x_) / cell_);
    const long gy = static_cast<long>((p.y - min_y_) / cell_);
    for (long dy = -1; dy <= 1; ++dy) {
      for (long dx = -1; dx <= 1; ++dx) {
        const long nx = gx + dx;
        const long ny = gy + dy;
        if (nx < 0 || ny < 0 || nx >= static_cast<long>(grid_w_) ||
            ny >= static_cast<long>(grid_h_)) {
          continue;
        }
        for (std::size_t j :
             buckets_[static_cast<std::size_t>(ny) * grid_w_ +
                      static_cast<std::size_t>(nx)]) {
          if (j != i && geom::distance2(p, positions_[j]) <= r2) {
            adjacency_[i].push_back(j);
          }
        }
      }
    }
    std::sort(adjacency_[i].begin(), adjacency_[i].end());
  }
}

double UnitDiskGraph::average_degree() const {
  double acc = 0.0;
  for (const auto& a : adjacency_) {
    acc += static_cast<double>(a.size());
  }
  return acc / static_cast<double>(positions_.size());
}

std::size_t UnitDiskGraph::nearest_node(geom::Vec2 p) const {
  // Expanding ring search over buckets, falling back to a linear scan for
  // very distant queries.
  std::size_t best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  const long gx = static_cast<long>(
      std::clamp((p.x - min_x_) / cell_, 0.0,
                 static_cast<double>(grid_w_ - 1)));
  const long gy = static_cast<long>(
      std::clamp((p.y - min_y_) / cell_, 0.0,
                 static_cast<double>(grid_h_ - 1)));
  const long max_ring =
      static_cast<long>(std::max(grid_w_, grid_h_));
  for (long ring = 0; ring <= max_ring; ++ring) {
    bool any = false;
    for (long dy = -ring; dy <= ring; ++dy) {
      for (long dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) {
          continue;  // only the ring boundary
        }
        const long nx = gx + dx;
        const long ny = gy + dy;
        if (nx < 0 || ny < 0 || nx >= static_cast<long>(grid_w_) ||
            ny >= static_cast<long>(grid_h_)) {
          continue;
        }
        any = true;
        for (std::size_t j :
             buckets_[static_cast<std::size_t>(ny) * grid_w_ +
                      static_cast<std::size_t>(nx)]) {
          const double d2 = geom::distance2(p, positions_[j]);
          if (d2 < best_d2 || (d2 == best_d2 && j < best)) {
            best_d2 = d2;
            best = j;
          }
        }
      }
    }
    // A hit in ring k guarantees the true nearest is within ring k+1.
    if (best_d2 < std::numeric_limits<double>::infinity() && ring >= 1 &&
        best_d2 <= static_cast<double>(ring) * cell_ *
                       static_cast<double>(ring) * cell_) {
      break;
    }
    if (!any && ring > 0 &&
        best_d2 < std::numeric_limits<double>::infinity()) {
      break;
    }
  }
  return best;
}

std::vector<std::size_t> UnitDiskGraph::nodes_within(geom::Vec2 p,
                                                     double r) const {
  std::vector<std::size_t> out;
  const double r2 = r * r;
  const long reach = static_cast<long>(r / cell_) + 1;
  const long gx = static_cast<long>(
      std::clamp((p.x - min_x_) / cell_, 0.0,
                 static_cast<double>(grid_w_ - 1)));
  const long gy = static_cast<long>(
      std::clamp((p.y - min_y_) / cell_, 0.0,
                 static_cast<double>(grid_h_ - 1)));
  for (long dy = -reach; dy <= reach; ++dy) {
    for (long dx = -reach; dx <= reach; ++dx) {
      const long nx = gx + dx;
      const long ny = gy + dy;
      if (nx < 0 || ny < 0 || nx >= static_cast<long>(grid_w_) ||
          ny >= static_cast<long>(grid_h_)) {
        continue;
      }
      for (std::size_t j : buckets_[static_cast<std::size_t>(ny) * grid_w_ +
                                    static_cast<std::size_t>(nx)]) {
        if (geom::distance2(p, positions_[j]) <= r2) {
          out.push_back(j);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool UnitDiskGraph::is_connected() const {
  std::vector<bool> seen(size(), false);
  std::vector<std::size_t> stack{0};
  seen[0] = true;
  std::size_t visited = 0;
  while (!stack.empty()) {
    const std::size_t cur = stack.back();
    stack.pop_back();
    ++visited;
    for (std::size_t nb : adjacency_[cur]) {
      if (!seen[nb]) {
        seen[nb] = true;
        stack.push_back(nb);
      }
    }
  }
  return visited == size();
}

}  // namespace fluxfp::net
