#pragma once

#include <vector>

#include "net/graph.hpp"
#include "net/routing.hpp"

namespace fluxfp::net {

/// A network flux map: per-node traffic amounts (generated + relayed)
/// observed over one measurement window. Index-aligned with the graph's
/// node set.
using FluxMap = std::vector<double>;

/// Ground-truth flux induced by one data collection over `tree` with
/// traffic stretch `stretch`: each reachable node contributes `stretch`
/// units and relays everything generated in its subtree, so
/// flux[i] = stretch * |subtree(i)|. Unreachable nodes carry 0.
FluxMap tree_flux(const CollectionTree& tree, double stretch);

/// Adds `b` into `a` element-wise (flux of concurrent collections
/// cumulates, Eq. at the end of §3.A). Throws std::invalid_argument on
/// size mismatch.
void accumulate(FluxMap& a, const FluxMap& b);

/// Neighborhood-averaged flux: value at node i becomes the mean over
/// {i} ∪ neighbors(i). The paper notes (§3.B) this smooths the randomness
/// of tree construction and improves model fit.
FluxMap smooth_flux(const UnitDiskGraph& graph, const FluxMap& flux);

/// Fraction of total flux "energy" (sum of values) carried by nodes at
/// `min_hop` hops or more from the tree root. §3.B: nodes >= 3 hops away
/// keep > 70% of the energy while fitting the model much better.
double flux_energy_fraction_beyond(const CollectionTree& tree,
                                   const FluxMap& flux, int min_hop);

/// Flux of a *multipath* collection: instead of one parent per node, every
/// node splits its outgoing load equally across ALL neighbors one hop
/// closer to the sink. A candidate routing-layer defense against flux
/// fingerprinting ("reshape the network traffics", §6) — and a deliberate
/// negative result: splitting changes which node carries which packet but
/// leaves the *expected* spatial flux field (what the model fits) intact,
/// so it only removes the tree-construction variance that smoothing
/// removes anyway. The ablation bench quantifies this.
/// `hop` must come from hop_distances(graph, root).
FluxMap multipath_flux(const UnitDiskGraph& graph,
                       const std::vector<int>& hop, std::size_t root,
                       double stretch);

}  // namespace fluxfp::net
