#pragma once

#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "net/graph.hpp"
#include "net/routing.hpp"

namespace fluxfp::net {

/// A network flux map: per-node traffic amounts (generated + relayed)
/// observed over one measurement window. Index-aligned with the graph's
/// node set.
using FluxMap = std::vector<double>;

/// Sentinel for a reading that was never observed (sniffer outage, crashed
/// node, burst loss). A missing reading is NOT a zero-flux measurement: a
/// true zero is evidence about the sink positions, a missing reading is no
/// evidence at all. Consumers (SparseObjective and everything above it)
/// exclude missing entries from fits instead of trusting them.
inline constexpr double kMissingReading =
    std::numeric_limits<double>::quiet_NaN();

/// True if `v` marks a missing reading.
inline bool is_missing(double v) { return std::isnan(v); }

/// Number of missing entries in `values`.
std::size_t count_missing(std::span<const double> values);

/// Replaces missing entries with literal 0 in place — the legacy
/// "dropout poisons the fit with zeros" behaviour, kept for ablation
/// against the masked representation. Returns the number replaced.
std::size_t zero_fill_missing(std::vector<double>& values);

/// Ground-truth flux induced by one data collection over `tree` with
/// traffic stretch `stretch`: each reachable node contributes `stretch`
/// units and relays everything generated in its subtree, so
/// flux[i] = stretch * |subtree(i)|. Unreachable nodes carry 0.
FluxMap tree_flux(const CollectionTree& tree, double stretch);

/// Adds `b` into `a` element-wise (flux of concurrent collections
/// cumulates, Eq. at the end of §3.A). Throws std::invalid_argument on
/// size mismatch.
void accumulate(FluxMap& a, const FluxMap& b);

/// Neighborhood-averaged flux: value at node i becomes the mean over
/// {i} ∪ neighbors(i). The paper notes (§3.B) this smooths the randomness
/// of tree construction and improves model fit.
///
/// Missing-aware: a missing entry at i stays missing (the sniffer at i
/// overheard nothing), and missing neighbors are excluded from the other
/// nodes' averages rather than dragging them toward NaN.
FluxMap smooth_flux(const UnitDiskGraph& graph, const FluxMap& flux);

/// The readings a sniffer set physically gathers from a window's flux map:
/// the value at each node of `samples`, in order, optionally neighborhood-
/// averaged first (`smooth`, §3.B — what a passive sniffer overhears is
/// every transmission in its radio range, which IS the 1-hop average).
/// Missing entries stay missing. This is the shared gathering primitive
/// behind the batch harnesses (eval::sniffed_readings) and the streaming
/// event emitter. Throws std::invalid_argument when the flux map's size
/// differs from the graph's or a sample index is out of range.
std::vector<double> gather_readings(const UnitDiskGraph& graph,
                                    const FluxMap& flux,
                                    std::span<const std::size_t> samples,
                                    bool smooth = true);

/// Fraction of total flux "energy" (sum of values) carried by nodes at
/// `min_hop` hops or more from the tree root. §3.B: nodes >= 3 hops away
/// keep > 70% of the energy while fitting the model much better.
double flux_energy_fraction_beyond(const CollectionTree& tree,
                                   const FluxMap& flux, int min_hop);

/// Flux of a *multipath* collection: instead of one parent per node, every
/// node splits its outgoing load equally across ALL neighbors one hop
/// closer to the sink. A candidate routing-layer defense against flux
/// fingerprinting ("reshape the network traffics", §6) — and a deliberate
/// negative result: splitting changes which node carries which packet but
/// leaves the *expected* spatial flux field (what the model fits) intact,
/// so it only removes the tree-construction variance that smoothing
/// removes anyway. The ablation bench quantifies this.
/// `hop` must come from hop_distances(graph, root).
FluxMap multipath_flux(const UnitDiskGraph& graph,
                       const std::vector<int>& hop, std::size_t root,
                       double stretch);

}  // namespace fluxfp::net
