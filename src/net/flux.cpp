#include "net/flux.hpp"

#include <algorithm>
#include <stdexcept>

namespace fluxfp::net {

std::size_t count_missing(std::span<const double> values) {
  std::size_t n = 0;
  for (double v : values) {
    if (is_missing(v)) {
      ++n;
    }
  }
  return n;
}

std::size_t zero_fill_missing(std::vector<double>& values) {
  std::size_t n = 0;
  for (double& v : values) {
    if (is_missing(v)) {
      v = 0.0;
      ++n;
    }
  }
  return n;
}

FluxMap tree_flux(const CollectionTree& tree, double stretch) {
  if (!(stretch >= 0.0)) {
    throw std::invalid_argument("tree_flux: negative stretch");
  }
  FluxMap flux(tree.size(), 0.0);
  const std::vector<std::size_t> sizes = subtree_sizes(tree);
  for (std::size_t i = 0; i < tree.size(); ++i) {
    flux[i] = stretch * static_cast<double>(sizes[i]);
  }
  return flux;
}

void accumulate(FluxMap& a, const FluxMap& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("accumulate: size mismatch");
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] += b[i];
  }
}

FluxMap smooth_flux(const UnitDiskGraph& graph, const FluxMap& flux) {
  if (flux.size() != graph.size()) {
    throw std::invalid_argument("smooth_flux: size mismatch");
  }
  FluxMap out(flux.size(), 0.0);
  for (std::size_t i = 0; i < flux.size(); ++i) {
    if (is_missing(flux[i])) {
      out[i] = kMissingReading;  // the sniffer at i overheard nothing
      continue;
    }
    double acc = flux[i];
    std::size_t observed = 1;
    for (std::size_t nb : graph.neighbors(i)) {
      if (!is_missing(flux[nb])) {
        acc += flux[nb];
        ++observed;
      }
    }
    out[i] = acc / static_cast<double>(observed);
  }
  return out;
}

std::vector<double> gather_readings(const UnitDiskGraph& graph,
                                    const FluxMap& flux,
                                    std::span<const std::size_t> samples,
                                    bool smooth) {
  if (flux.size() != graph.size()) {
    throw std::invalid_argument("gather_readings: size mismatch");
  }
  const FluxMap smoothed = smooth ? smooth_flux(graph, flux) : FluxMap();
  const FluxMap& readings = smooth ? smoothed : flux;
  std::vector<double> out;
  out.reserve(samples.size());
  for (std::size_t i : samples) {
    if (i >= readings.size()) {
      throw std::invalid_argument("gather_readings: sample out of range");
    }
    out.push_back(readings[i]);
  }
  return out;
}

FluxMap multipath_flux(const UnitDiskGraph& graph,
                       const std::vector<int>& hop, std::size_t root,
                       double stretch) {
  if (hop.size() != graph.size() || root >= graph.size()) {
    throw std::invalid_argument("multipath_flux: bad inputs");
  }
  if (!(stretch >= 0.0)) {
    throw std::invalid_argument("multipath_flux: negative stretch");
  }
  // Process nodes farthest-first; each node's load (own data + received)
  // is divided equally among its hop-1 neighbors.
  std::vector<std::size_t> order;
  order.reserve(graph.size());
  for (std::size_t i = 0; i < graph.size(); ++i) {
    if (hop[i] >= 0) {
      order.push_back(i);
    }
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return hop[a] > hop[b];
  });

  FluxMap incoming(graph.size(), 0.0);
  FluxMap flux(graph.size(), 0.0);
  for (std::size_t i : order) {
    const double load = stretch + incoming[i];
    flux[i] = load;
    if (i == root) {
      continue;  // the root hands data to the sink
    }
    std::vector<std::size_t> next;
    for (std::size_t nb : graph.neighbors(i)) {
      if (hop[nb] == hop[i] - 1) {
        next.push_back(nb);
      }
    }
    const double share = load / static_cast<double>(next.size());
    for (std::size_t nb : next) {
      incoming[nb] += share;
    }
  }
  return flux;
}

double flux_energy_fraction_beyond(const CollectionTree& tree,
                                   const FluxMap& flux, int min_hop) {
  if (flux.size() != tree.size()) {
    throw std::invalid_argument("flux_energy_fraction_beyond: size mismatch");
  }
  double total = 0.0;
  double beyond = 0.0;
  for (std::size_t i = 0; i < flux.size(); ++i) {
    if (!tree.reachable(i)) {
      continue;
    }
    total += flux[i];
    if (tree.hop[i] >= min_hop) {
      beyond += flux[i];
    }
  }
  return total > 0.0 ? beyond / total : 0.0;
}

}  // namespace fluxfp::net
