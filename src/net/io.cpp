#include "net/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace fluxfp::net {
namespace {

/// Splits a CSV line and validates the leading id against `expected`.
std::vector<std::string> split_checked(const std::string& line,
                                       std::size_t expected,
                                       std::size_t fields,
                                       std::size_t lineno) {
  std::vector<std::string> cells;
  std::istringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) {
    cells.push_back(cell);
  }
  if (cells.size() != fields) {
    throw std::runtime_error("csv: wrong field count on line " +
                             std::to_string(lineno));
  }
  std::size_t id = 0;
  try {
    id = static_cast<std::size_t>(std::stoul(cells[0]));
  } catch (const std::exception&) {
    throw std::runtime_error("csv: bad id on line " + std::to_string(lineno));
  }
  if (id != expected) {
    throw std::runtime_error("csv: ids must be contiguous from 0 (line " +
                             std::to_string(lineno) + ")");
  }
  return cells;
}

double parse_double(const std::string& s, std::size_t lineno) {
  try {
    return std::stod(s);
  } catch (const std::exception&) {
    throw std::runtime_error("csv: bad number on line " +
                             std::to_string(lineno));
  }
}

}  // namespace

void write_positions_csv(std::ostream& os,
                         const std::vector<geom::Vec2>& positions) {
  os << "id,x,y\n";
  for (std::size_t i = 0; i < positions.size(); ++i) {
    os << i << ',' << positions[i].x << ',' << positions[i].y << '\n';
  }
}

std::vector<geom::Vec2> read_positions_csv(std::istream& is) {
  std::vector<geom::Vec2> out;
  std::string line;
  std::size_t lineno = 0;
  bool first = true;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) {
      continue;
    }
    if (first) {
      first = false;
      if (line.rfind("id,", 0) == 0) {
        continue;
      }
    }
    const auto cells = split_checked(line, out.size(), 3, lineno);
    out.push_back(
        {parse_double(cells[1], lineno), parse_double(cells[2], lineno)});
  }
  return out;
}

void write_flux_csv(std::ostream& os, const FluxMap& flux) {
  os << "id,flux\n";
  for (std::size_t i = 0; i < flux.size(); ++i) {
    os << i << ',' << flux[i] << '\n';
  }
}

FluxMap read_flux_csv(std::istream& is) {
  FluxMap out;
  std::string line;
  std::size_t lineno = 0;
  bool first = true;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) {
      continue;
    }
    if (first) {
      first = false;
      if (line.rfind("id,", 0) == 0) {
        continue;
      }
    }
    const auto cells = split_checked(line, out.size(), 2, lineno);
    out.push_back(parse_double(cells[1], lineno));
  }
  return out;
}

}  // namespace fluxfp::net
