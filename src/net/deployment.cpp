#include "net/deployment.hpp"

#include <cmath>
#include <stdexcept>

namespace fluxfp::net {

std::vector<geom::Vec2> perturbed_grid(const geom::RectField& field,
                                       std::size_t rows, std::size_t cols,
                                       double jitter_fraction,
                                       geom::Rng& rng) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("perturbed_grid: zero rows or cols");
  }
  if (jitter_fraction < 0.0 || jitter_fraction > 1.0) {
    throw std::invalid_argument("perturbed_grid: jitter outside [0,1]");
  }
  const double cw = field.width() / static_cast<double>(cols);
  const double ch = field.height() / static_cast<double>(rows);
  std::uniform_real_distribution<double> jitter(-0.5, 0.5);
  std::vector<geom::Vec2> pts;
  pts.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const geom::Vec2 center{(static_cast<double>(c) + 0.5) * cw,
                              (static_cast<double>(r) + 0.5) * ch};
      const geom::Vec2 off{jitter(rng) * cw * jitter_fraction,
                           jitter(rng) * ch * jitter_fraction};
      pts.push_back(field.clamp(center + off));
    }
  }
  return pts;
}

std::vector<geom::Vec2> uniform_random(const geom::Field& field,
                                       std::size_t count, geom::Rng& rng) {
  return geom::uniform_points(field, count, rng);
}

std::vector<geom::Vec2> clustered(const geom::Field& field,
                                  std::size_t count, std::size_t clusters,
                                  double spread, geom::Rng& rng) {
  if (clusters == 0 || !(spread >= 0.0)) {
    throw std::invalid_argument("clustered: bad clusters/spread");
  }
  std::vector<geom::Vec2> centers;
  centers.reserve(clusters);
  for (std::size_t c = 0; c < clusters; ++c) {
    centers.push_back(geom::uniform_in_field(field, rng));
  }
  std::normal_distribution<double> gauss(0.0, spread);
  std::vector<geom::Vec2> pts;
  pts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const geom::Vec2 center = centers[i % clusters];
    pts.push_back(field.clamp(center + geom::Vec2{gauss(rng), gauss(rng)}));
  }
  return pts;
}

std::vector<geom::Vec2> deploy(DeploymentKind kind, const geom::Field& field,
                               std::size_t count, geom::Rng& rng) {
  switch (kind) {
    case DeploymentKind::kPerturbedGrid: {
      const auto* rect = dynamic_cast<const geom::RectField*>(&field);
      if (rect == nullptr) {
        throw std::invalid_argument(
            "deploy: perturbed grids require a rectangular field");
      }
      // rows/cols matching the aspect ratio with rows*cols ~= count.
      const double aspect = rect->width() / rect->height();
      auto rows = static_cast<std::size_t>(
          std::round(std::sqrt(static_cast<double>(count) / aspect)));
      rows = std::max<std::size_t>(rows, 1);
      const auto cols = std::max<std::size_t>(
          static_cast<std::size_t>(std::round(static_cast<double>(count) /
                                              static_cast<double>(rows))),
          1);
      return perturbed_grid(*rect, rows, cols, 0.5, rng);
    }
    case DeploymentKind::kUniformRandom:
      return uniform_random(field, count, rng);
    case DeploymentKind::kClustered: {
      // Cluster geometry scaled to the field: ~1 cluster per 9x9 patch,
      // spread a third of the patch.
      const auto clusters_n = std::max<std::size_t>(
          static_cast<std::size_t>(field.area() / 81.0), 2);
      return clustered(field, count, clusters_n, 3.0, rng);
    }
  }
  throw std::invalid_argument("deploy: unknown kind");
}

const char* to_string(DeploymentKind kind) {
  switch (kind) {
    case DeploymentKind::kPerturbedGrid:
      return "perturbed-grid";
    case DeploymentKind::kUniformRandom:
      return "random";
    case DeploymentKind::kClustered:
      return "clustered";
  }
  return "?";
}

}  // namespace fluxfp::net
