#pragma once

#include <cstddef>
#include <vector>

#include "geom/field.hpp"
#include "geom/vec2.hpp"

namespace fluxfp::net {

/// Unit-disk communication graph over a set of node positions: nodes i, j
/// are linked iff |p_i - p_j| <= radius. Neighbor lists are built with a
/// uniform grid bucket structure, O(n) expected for bounded densities.
class UnitDiskGraph {
 public:
  /// Builds the graph. Throws std::invalid_argument for radius <= 0 or an
  /// empty position set.
  UnitDiskGraph(std::vector<geom::Vec2> positions, double radius);

  std::size_t size() const { return positions_.size(); }
  double radius() const { return radius_; }
  const std::vector<geom::Vec2>& positions() const { return positions_; }
  geom::Vec2 position(std::size_t i) const { return positions_[i]; }

  /// Neighbor indices of node `i` (radius-ball, excluding `i`).
  const std::vector<std::size_t>& neighbors(std::size_t i) const {
    return adjacency_[i];
  }

  std::size_t degree(std::size_t i) const { return adjacency_[i].size(); }
  double average_degree() const;

  /// Index of the node closest to `p` (ties broken toward lower index).
  std::size_t nearest_node(geom::Vec2 p) const;

  /// Indices of nodes within `r` of `p` (inclusive).
  std::vector<std::size_t> nodes_within(geom::Vec2 p, double r) const;

  /// True if the graph is a single connected component.
  bool is_connected() const;

 private:
  std::vector<geom::Vec2> positions_;
  double radius_;
  std::vector<std::vector<std::size_t>> adjacency_;

  // Grid-bucket index used for range queries.
  double cell_ = 0.0;
  std::size_t grid_w_ = 0;
  std::size_t grid_h_ = 0;
  double min_x_ = 0.0;
  double min_y_ = 0.0;
  std::vector<std::vector<std::size_t>> buckets_;

  std::size_t bucket_of(geom::Vec2 p) const;
  void build_index();
  void build_adjacency();
};

}  // namespace fluxfp::net
