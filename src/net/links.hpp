#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "net/graph.hpp"

namespace fluxfp::net {

/// One communication link of the unit-disk graph, endpoints as node
/// indices with a < b (each undirected edge appears exactly once).
struct Link {
  std::size_t a = 0;
  std::size_t b = 0;
};

/// All links of the graph in deterministic order: ascending by a, then by
/// b — the order neighbors(a) enumerates, filtered to b > a. Link i's
/// index is the stable site key the RSS pipeline uses everywhere
/// (readings, FluxEvent::node, checkpoint validation). `max_length` > 0
/// keeps only links no longer than that (RSS hardware measures reliably
/// on short links); 0 keeps all.
std::vector<Link> enumerate_links(const UnitDiskGraph& graph,
                                  double max_length = 0.0);

/// The readings a link-monitoring deployment gathers from a per-link
/// value map: link_values[links[i]] for each sniffed link index, in
/// order. Missing entries (kMissingReading) stay missing — same
/// no-evidence semantics as gather_readings. Throws
/// std::invalid_argument when a link index is out of range.
std::vector<double> gather_link_readings(std::span<const double> link_values,
                                         std::span<const std::size_t> links);

}  // namespace fluxfp::net
