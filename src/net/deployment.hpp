#pragma once

#include <cstddef>
#include <vector>

#include "geom/field.hpp"
#include "geom/sampling.hpp"
#include "geom/vec2.hpp"

namespace fluxfp::net {

/// How sensor nodes are laid out in the field. The paper evaluates both:
/// perturbed grids (§5.A, after Bruck/Gao/Jiang MobiCom'05) for regular
/// conditions and purely random placement for variability (§5.C).
enum class DeploymentKind {
  kPerturbedGrid,
  kUniformRandom,
  /// Gaussian clusters around uniform centers — an irregular-density
  /// stressor beyond the paper's two settings (buildings on a campus).
  kClustered,
};

/// Grid of `rows` x `cols` cells over the field, one node per cell,
/// uniformly jittered within `jitter_fraction` of the cell around the cell
/// center (0 = exact grid, 1 = anywhere in the cell).
std::vector<geom::Vec2> perturbed_grid(const geom::RectField& field,
                                       std::size_t rows, std::size_t cols,
                                       double jitter_fraction, geom::Rng& rng);

/// `count` i.i.d. uniform node positions (any field shape).
std::vector<geom::Vec2> uniform_random(const geom::Field& field,
                                       std::size_t count, geom::Rng& rng);

/// `count` nodes in `clusters` Gaussian clusters of std-dev `spread`
/// around uniformly placed centers, clamped into the field. Cluster
/// membership is balanced round-robin so no cluster is empty.
std::vector<geom::Vec2> clustered(const geom::Field& field,
                                  std::size_t count, std::size_t clusters,
                                  double spread, geom::Rng& rng);

/// Deploys approximately `count` nodes of the given kind. For perturbed
/// grids the row/column counts are chosen to match the field aspect ratio
/// and the exact size may differ slightly from `count`; perturbed grids
/// require a RectField (throws std::invalid_argument otherwise).
std::vector<geom::Vec2> deploy(DeploymentKind kind, const geom::Field& field,
                               std::size_t count, geom::Rng& rng);

const char* to_string(DeploymentKind kind);

}  // namespace fluxfp::net
