#pragma once

#include <iosfwd>
#include <vector>

#include "geom/vec2.hpp"
#include "net/flux.hpp"

namespace fluxfp::net {

/// Writes node positions as CSV ("id,x,y", header included) so deployments
/// can be shared and re-loaded across runs/tools.
void write_positions_csv(std::ostream& os,
                         const std::vector<geom::Vec2>& positions);

/// Parses the CSV produced by write_positions_csv. Ids must be the
/// contiguous 0..n-1 in order; throws std::runtime_error on malformed
/// input or out-of-order ids.
std::vector<geom::Vec2> read_positions_csv(std::istream& is);

/// Writes a flux map as CSV ("id,flux").
void write_flux_csv(std::ostream& os, const FluxMap& flux);

/// Parses the CSV produced by write_flux_csv; same id rules as positions.
FluxMap read_flux_csv(std::istream& is);

}  // namespace fluxfp::net
