#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/observation_model.hpp"
#include "core/smc.hpp"
#include "net/graph.hpp"
#include "stream/event.hpp"

namespace fluxfp::stream {

/// Policy of one streaming tracking session.
struct StreamTrackerConfig {
  core::SmcConfig smc;

  /// Event-time deadline: the oldest open epoch window fires once an event
  /// arrives whose timestamp exceeds the window's newest reading by more
  /// than this. Deadlines are *virtual time* (event timestamps), never
  /// wall-clock — replaying a recorded trace at any speed, on any worker
  /// layout, closes exactly the same windows with the same contents.
  double close_delay = 0.5;

  /// Distinct sniffers heard from that close a window immediately, without
  /// waiting for the deadline (the happy path when no reading was lost).
  /// 0 = count never closes a window; only the deadline / flush() do.
  std::size_t expected_readings = 0;

  /// Backstop on reordering: at most this many epoch windows stay open at
  /// once; exceeding it force-closes the oldest (counted in
  /// StreamStats::forced_closes).
  std::size_t max_open_epochs = 4;
};

/// Output of one fired epoch window.
struct EpochResult {
  std::uint32_t epoch = 0;
  double time = 0.0;         ///< observation time handed to the SMC step
  std::size_t readings = 0;  ///< live (non-missing) readings in the window
  core::SmcStepResult step;
  std::vector<geom::Vec2> estimates;  ///< per tracked slot, after the step
  double filter_micros = 0.0;         ///< wall-clock cost of the step
};

/// Ingestion + filtering counters of one session.
struct StreamStats {
  std::uint64_t events = 0;        ///< events folded into windows
  std::uint64_t duplicates = 0;    ///< re-reports of a (epoch, node) slot
  std::uint64_t late = 0;          ///< events for an already-fired epoch
  /// Events folded while a newer epoch's window was already open — the
  /// reordering that multi-window accumulation exists to absorb.
  std::uint64_t out_of_order = 0;
  std::uint64_t unknown_node = 0;  ///< events from nodes not in the set
  std::uint64_t epochs_fired = 0;
  std::uint64_t forced_closes = 0;       ///< closed by max_open_epochs
  std::vector<double> filter_micros;     ///< per fired epoch, wall-clock
};

/// One open (not yet fired) epoch window in checkpoint form.
struct WindowState {
  std::uint32_t epoch = 0;
  double newest_time = 0.0;
  std::size_t seen_count = 0;
  std::vector<double> readings;  ///< per sniffer slot; NaN = missing
  std::vector<bool> seen;        ///< slot reported at least once
};

/// Complete mutable state of a StreamTracker — everything on_event() and
/// flush() touch: the SMC filter state, the RNG stream position, every open
/// epoch window, the virtual-time cursors, and the ingestion counters.
/// Construction inputs (model, sniffer set, config, seed) are deliberately
/// absent: a restore target must be built with the same inputs, and
/// restore_state() validates only shapes. Serialized as FLUXFPC1 by
/// stream/checkpoint.hpp.
struct StreamTrackerState {
  /// mt19937_64 engine state, text-serialized via operator<< — integral
  /// words, so the round-trip is exact.
  std::string rng;
  core::SmcState smc;
  std::vector<WindowState> open;  ///< strictly ascending epoch order
  double now = 0.0;
  double last_step_time = 0.0;
  bool fired_any = false;
  std::uint32_t last_fired_epoch = 0;
  StreamStats stats;
};

/// The paper's asynchronous-updating SMC tracker (§4.E, Algorithm 4.1)
/// turned event-driven: readings arrive one at a time (in any order, with
/// duplicates and stragglers) and are folded into per-epoch observation
/// windows over the session's sniffer set; when a window closes — all
/// expected readings in, event-time deadline lapsed, or reordering
/// backstop — the window becomes a SparseObjective (never-heard-from slots
/// stay net::kMissingReading and are masked) and one SmcTracker::step runs.
///
/// Folding rules:
///  * duplicate — a (epoch, node) slot reported twice keeps the LATEST
///    reading (mirrors SparseObjective's batch-side dedup);
///  * late — events for an epoch that already fired are counted and
///    dropped (windows fire in strictly ascending epoch order);
///  * out-of-order — events for a future epoch open a new window; up to
///    max_open_epochs windows accumulate concurrently.
///
/// Determinism: all state is driven by event *content and arrival order*
/// only — same event sequence in, bit-identical estimates out, regardless
/// of wall-clock pacing or what thread calls on_event(). The RNG is owned
/// by the session and seeded at construction.
class StreamTracker {
 public:
  /// Model-generic form: any ObservationModel backend (cloned — the
  /// session owns an immutable copy). `field` is the tracking domain the
  /// SMC samples candidates in (must outlive the tracker). `site_keys` are
  /// the FluxEvent::node values that address the observation sites —
  /// original-graph node indices for point models, link indices (see
  /// net::enumerate_links) for link models — and `sites` their geometry
  /// (same length, non-empty). `num_users` is the number of jointly
  /// tracked users in this session (usually 1). Throws
  /// std::invalid_argument on size mismatch, empty sites, duplicate keys,
  /// or a bad config.
  StreamTracker(const core::ObservationModel& model, const geom::Field& field,
                std::vector<std::size_t> site_keys,
                std::vector<core::Site> sites, std::size_t num_users,
                StreamTrackerConfig config, std::uint64_t seed);

  /// Flux form: `sniffer_nodes` are original-graph node indices,
  /// `sniffer_positions` their positions (same length, non-empty); the
  /// tracking field is the model's own.
  StreamTracker(const core::FluxModel& model,
                std::vector<std::size_t> sniffer_nodes,
                std::vector<geom::Vec2> sniffer_positions,
                std::size_t num_users, StreamTrackerConfig config,
                std::uint64_t seed);

  /// Convenience: sniffer positions read off the graph.
  StreamTracker(const core::FluxModel& model,
                const net::UnitDiskGraph& graph,
                std::vector<std::size_t> sniffer_nodes, std::size_t num_users,
                StreamTrackerConfig config, std::uint64_t seed);

  /// Folds one event; returns the results of every epoch window the event
  /// caused to fire (usually none or one).
  std::vector<EpochResult> on_event(const FluxEvent& event);

  /// Fires all still-open windows in epoch order (end of stream).
  std::vector<EpochResult> flush();

  /// Current position estimate per tracked slot.
  geom::Vec2 estimate(std::size_t user) const { return smc_.estimate(user); }
  std::size_t num_users() const { return smc_.num_users(); }
  /// Virtual-time cursor: the newest event timestamp folded so far (what a
  /// quiesced-estimate reader reports as the estimate's time).
  double now() const { return now_; }
  std::size_t open_windows() const { return open_.size(); }
  const StreamStats& stats() const { return stats_; }
  const StreamTrackerConfig& config() const { return config_; }
  const std::vector<std::size_t>& sniffer_nodes() const {
    return sniffer_nodes_;
  }
  /// The session's observation backend (shared, immutable).
  const core::ObservationModel& model() const { return *model_; }

  /// Snapshot of all mutable session state. A tracker constructed with the
  /// same inputs and restored from the snapshot folds every subsequent
  /// event bit-identically to one that never stopped (readings round-trip
  /// NaN-exactly; the RNG resumes mid-stream).
  StreamTrackerState save_state() const;
  /// Restores a snapshot from a tracker with the same sniffer count.
  /// Throws std::invalid_argument on malformed state (window slot counts
  /// that do not match this tracker's sniffer set, non-ascending window
  /// epochs, an unparseable RNG stream) — the checkpoint layer converts
  /// these into typed errors.
  void restore_state(const StreamTrackerState& state);

 private:
  struct Window {
    std::vector<double> readings;  ///< per sniffer slot; missing until seen
    std::vector<bool> seen;        ///< slot reported at least once
    std::size_t seen_count = 0;
    double newest_time = 0.0;  ///< max event time folded into this window
  };

  /// Fires the oldest open window (which must exist).
  EpochResult fire_oldest();
  /// Closes every window made eligible by the current virtual time.
  void collect_ripe(std::vector<EpochResult>& out);

  /// Shared immutable backend: per-epoch objectives share it instead of
  /// cloning a model copy per fired window.
  std::shared_ptr<const core::ObservationModel> model_;
  std::vector<std::size_t> sniffer_nodes_;  ///< site keys (see ctor)
  std::vector<core::Site> sites_;
  std::unordered_map<std::uint32_t, std::size_t> node_slot_;
  StreamTrackerConfig config_;
  geom::Rng rng_;
  core::SmcTracker smc_;
  /// Epoch-scoped scratch threaded through every SMC step: reset at the
  /// start of each fired window, so steady-state epochs run allocation-free
  /// once the arena has seen its largest step. Never checkpointed — scratch
  /// holds no state across steps.
  numeric::Arena epoch_arena_;

  std::map<std::uint32_t, Window> open_;  ///< epoch -> window, ordered
  double now_ = 0.0;          ///< newest event time seen (virtual clock)
  double last_step_time_ = 0.0;
  bool fired_any_ = false;
  std::uint32_t last_fired_epoch_ = 0;
  StreamStats stats_;
};

}  // namespace fluxfp::stream
