#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/flux.hpp"

namespace fluxfp::stream {

/// One sniffed flux reading arriving at the tracking service: at event time
/// `time`, the sniffer at graph node `node` reports `reading` for the
/// collection epoch `epoch` of tracking stream `user`.
///
/// This is the unit of the online runtime — where the batch harnesses hand
/// the tracker a complete FluxMap per round, the streaming path receives
/// these asynchronously, folds them into per-epoch observation windows
/// (StreamTracker) and only then runs the SMC filtering step. A reading may
/// be net::kMissingReading (the sniffer explicitly reported "heard
/// nothing"); a sniffer that never reports at all simply produces no event,
/// and its slot stays missing when the window closes. Both cases end up
/// masked out of the fit by SparseObjective.
///
/// `user` identifies the tracking session the event belongs to — one
/// mobile user in the common single-user-per-session case, or a small
/// jointly-tracked group. The TrackerManager shards sessions across worker
/// threads by this key, so per-user event order is all that matters for
/// determinism (see DESIGN.md "Streaming runtime").
struct FluxEvent {
  double time = 0.0;        ///< measurement timestamp (event time)
  std::uint32_t user = 0;   ///< tracking session / shard key
  std::uint32_t epoch = 0;  ///< collection epoch (observation window id)
  std::uint32_t node = 0;   ///< sniffed node index (original graph indexing)
  double reading = 0.0;     ///< flux value; may be net::kMissingReading

  friend bool operator==(const FluxEvent& a, const FluxEvent& b) {
    // Missing readings compare equal (NaN != NaN would make every recorded
    // outage break trace round-trip comparisons).
    const bool readings_equal =
        a.reading == b.reading ||
        (net::is_missing(a.reading) && net::is_missing(b.reading));
    return a.time == b.time && a.user == b.user && a.epoch == b.epoch &&
           a.node == b.node && readings_equal;
  }
};

/// Merges several already time-ordered event sequences into one stream
/// ordered by event time (stable across inputs: ties keep the earlier
/// input's events first, so the merged order is deterministic).
std::vector<FluxEvent> merge_by_time(
    std::span<const std::vector<FluxEvent>> streams);

}  // namespace fluxfp::stream
