#include "stream/trace_io.hpp"

#include <chrono>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "stream/manager.hpp"

namespace fluxfp::stream {

namespace {

void pack_u32(char* dst, std::uint32_t v) { std::memcpy(dst, &v, 4); }
void pack_f64(char* dst, double v) { std::memcpy(dst, &v, 8); }
std::uint32_t unpack_u32(const char* src) {
  std::uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
double unpack_f64(const char* src) {
  double v;
  std::memcpy(&v, src, 8);
  return v;
}

const char* kind_name(TraceError::Kind kind) {
  switch (kind) {
    case TraceError::Kind::kTruncatedHeader:
      return "truncated header";
    case TraceError::Kind::kBadMagic:
      return "bad magic";
    case TraceError::Kind::kBadVersion:
      return "unsupported version";
    case TraceError::Kind::kTruncatedRecord:
      return "truncated record";
    case TraceError::Kind::kBadStream:
      return "stream failure";
  }
  return "unknown";
}

}  // namespace

std::string TraceError::to_string() const {
  return "offset " + std::to_string(offset) + ": " + kind_name(kind) +
         (reason.empty() ? "" : " — " + reason);
}

TraceFormatError::TraceFormatError(TraceError err)
    : std::runtime_error("TraceReplayer: " + err.to_string()),
      err_(std::move(err)) {}

TraceRecorder::TraceRecorder(std::ostream& os) : os_(&os) {
  char header[kTraceHeaderBytes];
  std::memcpy(header, kTraceMagic, sizeof(kTraceMagic));
  pack_u32(header + 8, kTraceVersion);
  pack_u32(header + 12, 0);
  os_->write(header, sizeof(header));
  if (!*os_) {
    throw std::runtime_error("TraceRecorder: failed to write header");
  }
}

void TraceRecorder::write(const FluxEvent& event) {
  char record[kTraceRecordBytes];
  pack_f64(record + 0, event.time);
  pack_u32(record + 8, event.user);
  pack_u32(record + 12, event.epoch);
  pack_u32(record + 16, event.node);
  pack_f64(record + 20, event.reading);
  os_->write(record, sizeof(record));
  if (!*os_) {
    throw std::runtime_error("TraceRecorder: write failed");
  }
  ++written_;
}

void TraceRecorder::write(std::span<const FluxEvent> events) {
  for (const FluxEvent& e : events) {
    write(e);
  }
}

TraceReplayer::TraceReplayer(std::istream& is) : is_(&is) {
  char header[kTraceHeaderBytes];
  is_->read(header, sizeof(header));
  const std::streamsize got = is_->gcount();
  if (got != static_cast<std::streamsize>(sizeof(header))) {
    error_ = TraceError{TraceError::Kind::kTruncatedHeader,
                        static_cast<std::uint64_t>(got),
                        "got " + std::to_string(got) + " of " +
                            std::to_string(kTraceHeaderBytes) +
                            " header bytes"};
    throw TraceFormatError(*error_);
  }
  if (std::memcmp(header, kTraceMagic, sizeof(kTraceMagic)) != 0) {
    error_ = TraceError{TraceError::Kind::kBadMagic, 0,
                        "not a fluxfp event trace"};
    throw TraceFormatError(*error_);
  }
  const std::uint32_t version = unpack_u32(header + 8);
  if (version != kTraceVersion) {
    error_ = TraceError{TraceError::Kind::kBadVersion, 8,
                        "trace version " + std::to_string(version) +
                            ", this build speaks " +
                            std::to_string(kTraceVersion)};
    throw TraceFormatError(*error_);
  }
  offset_ = kTraceHeaderBytes;
}

bool TraceReplayer::try_next(FluxEvent& out) {
  if (error_) {
    return false;  // the stream already ended badly; stay ended
  }
  char record[kTraceRecordBytes];
  is_->read(record, sizeof(record));
  const std::streamsize got = is_->gcount();
  if (got == 0) {
    if (is_->bad()) {
      error_ = TraceError{TraceError::Kind::kBadStream, offset_,
                          "read failed mid-trace"};
    }
    return false;
  }
  if (got != static_cast<std::streamsize>(sizeof(record))) {
    error_ = TraceError{
        TraceError::Kind::kTruncatedRecord, offset_,
        "record " + std::to_string(read_) + " has " + std::to_string(got) +
            " of " + std::to_string(kTraceRecordBytes) + " bytes"};
    return false;
  }
  out.time = unpack_f64(record + 0);
  out.user = unpack_u32(record + 8);
  out.epoch = unpack_u32(record + 12);
  out.node = unpack_u32(record + 16);
  out.reading = unpack_f64(record + 20);
  ++read_;
  offset_ += kTraceRecordBytes;
  return true;
}

bool TraceReplayer::next(FluxEvent& out) {
  const bool filled = try_next(out);
  if (!filled && error_) {
    throw TraceFormatError(*error_);
  }
  return filled;
}

std::vector<FluxEvent> TraceReplayer::read_all() {
  std::vector<FluxEvent> events;
  FluxEvent e;
  while (next(e)) {
    events.push_back(e);
  }
  return events;
}

void write_trace_file(const std::string& path,
                      std::span<const FluxEvent> events) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("write_trace_file: cannot open " + path);
  }
  TraceRecorder recorder(out);
  recorder.write(events);
}

std::vector<FluxEvent> read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_trace_file: cannot open " + path);
  }
  TraceReplayer replayer(in);
  return replayer.read_all();
}

std::uint64_t replay_trace(TraceReplayer& replayer, TrackerManager& manager,
                           double speed) {
  std::uint64_t pushed = 0;
  const auto wall_start = std::chrono::steady_clock::now();
  bool have_origin = false;
  double time_origin = 0.0;
  FluxEvent event;
  while (replayer.next(event)) {
    if (speed > 0.0) {
      if (!have_origin) {
        time_origin = event.time;
        have_origin = true;
      }
      // Deliver no earlier than the event's trace-time offset, scaled.
      // Reordered traces (event-level faults) have non-monotonic times;
      // a negative offset simply means "due already".
      const auto due =
          wall_start + std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(
                               (event.time - time_origin) / speed));
      std::this_thread::sleep_until(due);
    }
    if (manager.push(event)) {
      ++pushed;
    }
  }
  return pushed;
}

std::uint64_t replay_trace_file(const std::string& path,
                                TrackerManager& manager, double speed) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("replay_trace_file: cannot open " + path);
  }
  TraceReplayer replayer(in);
  return replay_trace(replayer, manager, speed);
}

}  // namespace fluxfp::stream
