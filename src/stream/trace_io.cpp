#include "stream/trace_io.hpp"

#include <chrono>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/observation_model.hpp"
#include "stream/manager.hpp"

namespace fluxfp::stream {

namespace {

void pack_u32(char* dst, std::uint32_t v) { std::memcpy(dst, &v, 4); }
void pack_f64(char* dst, double v) { std::memcpy(dst, &v, 8); }
std::uint32_t unpack_u32(const char* src) {
  std::uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
double unpack_f64(const char* src) {
  double v;
  std::memcpy(&v, src, 8);
  return v;
}

const char* kind_name(TraceError::Kind kind) {
  switch (kind) {
    case TraceError::Kind::kTruncatedHeader:
      return "truncated header";
    case TraceError::Kind::kBadMagic:
      return "bad magic";
    case TraceError::Kind::kBadVersion:
      return "unsupported version";
    case TraceError::Kind::kTruncatedRecord:
      return "truncated record";
    case TraceError::Kind::kBadStream:
      return "stream failure";
  }
  return "unknown";
}

}  // namespace

void encode_trace_record(char* dst, const FluxEvent& event) {
  pack_f64(dst + 0, event.time);
  pack_u32(dst + 8, event.user);
  pack_u32(dst + 12, event.epoch);
  pack_u32(dst + 16, event.node);
  pack_f64(dst + 20, event.reading);
}

void decode_trace_record(const char* src, FluxEvent& out) {
  out.time = unpack_f64(src + 0);
  out.user = unpack_u32(src + 8);
  out.epoch = unpack_u32(src + 12);
  out.node = unpack_u32(src + 16);
  out.reading = unpack_f64(src + 20);
}

std::string TraceError::to_string() const {
  return "offset " + std::to_string(offset) + ": " + kind_name(kind) +
         (reason.empty() ? "" : " — " + reason);
}

TraceFormatError::TraceFormatError(TraceError err)
    : std::runtime_error("TraceReplayer: " + err.to_string()),
      err_(std::move(err)) {}

TraceRecorder::TraceRecorder(std::ostream& os, std::uint8_t model_id)
    : os_(&os), model_id_(model_id) {
  if (!core::known_model_id(model_id)) {
    throw std::invalid_argument("TraceRecorder: unknown model id " +
                                std::to_string(model_id));
  }
  char header[kTraceHeaderBytes];
  std::memcpy(header, kTraceMagic, sizeof(kTraceMagic));
  // Flux (model 0) stays version 1, byte-identical to pre-model-tag
  // recorders; only a non-flux model needs the version-2 header.
  if (model_id == 0) {
    pack_u32(header + 8, kTraceVersion);
    pack_u32(header + 12, 0);
  } else {
    pack_u32(header + 8, kTraceVersionModel);
    pack_u32(header + 12, 0);
    header[12] = static_cast<char>(model_id);
  }
  os_->write(header, sizeof(header));
  if (!*os_) {
    throw std::runtime_error("TraceRecorder: failed to write header");
  }
}

void TraceRecorder::write(const FluxEvent& event) {
  char record[kTraceRecordBytes];
  encode_trace_record(record, event);
  os_->write(record, sizeof(record));
  if (!*os_) {
    throw std::runtime_error("TraceRecorder: write failed");
  }
  ++written_;
}

void TraceRecorder::write(std::span<const FluxEvent> events) {
  for (const FluxEvent& e : events) {
    write(e);
  }
}

TraceReplayer::TraceReplayer(std::istream& is) : is_(&is) {
  char header[kTraceHeaderBytes];
  is_->read(header, sizeof(header));
  const std::streamsize got = is_->gcount();
  if (got != static_cast<std::streamsize>(sizeof(header))) {
    error_ = TraceError{TraceError::Kind::kTruncatedHeader,
                        static_cast<std::uint64_t>(got),
                        "got " + std::to_string(got) + " of " +
                            std::to_string(kTraceHeaderBytes) +
                            " header bytes"};
    throw TraceFormatError(*error_);
  }
  if (std::memcmp(header, kTraceMagic, sizeof(kTraceMagic)) != 0) {
    error_ = TraceError{TraceError::Kind::kBadMagic, 0,
                        "not a fluxfp event trace"};
    throw TraceFormatError(*error_);
  }
  const std::uint32_t version = unpack_u32(header + 8);
  if (version != kTraceVersion && version != kTraceVersionModel) {
    error_ = TraceError{TraceError::Kind::kBadVersion, 8,
                        "trace version " + std::to_string(version) +
                            ", this build speaks " +
                            std::to_string(kTraceVersion) + " and " +
                            std::to_string(kTraceVersionModel)};
    throw TraceFormatError(*error_);
  }
  if (version == kTraceVersionModel) {
    const auto raw = static_cast<std::uint8_t>(header[12]);
    if (!core::known_model_id(raw)) {
      error_ = TraceError{TraceError::Kind::kBadVersion, 12,
                          "unknown observation-model id " +
                              std::to_string(raw)};
      throw TraceFormatError(*error_);
    }
    model_id_ = raw;
  }
  offset_ = kTraceHeaderBytes;
}

bool TraceReplayer::try_next(FluxEvent& out) {
  if (error_) {
    return false;  // the stream already ended badly; stay ended
  }
  char record[kTraceRecordBytes];
  is_->read(record, sizeof(record));
  const std::streamsize got = is_->gcount();
  if (got == 0) {
    if (is_->bad()) {
      error_ = TraceError{TraceError::Kind::kBadStream, offset_,
                          "read failed mid-trace"};
    }
    return false;
  }
  if (got != static_cast<std::streamsize>(sizeof(record))) {
    error_ = TraceError{
        TraceError::Kind::kTruncatedRecord, offset_,
        "record " + std::to_string(read_) + " has " + std::to_string(got) +
            " of " + std::to_string(kTraceRecordBytes) + " bytes"};
    return false;
  }
  decode_trace_record(record, out);
  ++read_;
  offset_ += kTraceRecordBytes;
  return true;
}

bool TraceReplayer::next(FluxEvent& out) {
  const bool filled = try_next(out);
  if (!filled && error_) {
    throw TraceFormatError(*error_);
  }
  return filled;
}

std::vector<FluxEvent> TraceReplayer::read_all() {
  std::vector<FluxEvent> events;
  FluxEvent e;
  while (next(e)) {
    events.push_back(e);
  }
  return events;
}

void write_trace_file(const std::string& path,
                      std::span<const FluxEvent> events) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("write_trace_file: cannot open " + path);
  }
  TraceRecorder recorder(out);
  recorder.write(events);
}

std::vector<FluxEvent> read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_trace_file: cannot open " + path);
  }
  TraceReplayer replayer(in);
  return replayer.read_all();
}

namespace {

/// Deadlines within this much of "now" are released without sleeping: the
/// scheduler cannot honor sub-slack sleeps anyway, and attempting them at
/// high Nx speedups (per-event syscall + oversleep) throttles the offered
/// rate below the advertised one.
constexpr double kPacingSlackSeconds = 500e-6;
/// Longest single sleep, so a stop flag is honored promptly.
constexpr auto kPacingChunk = std::chrono::milliseconds(50);

}  // namespace

ReplayPacer::ReplayPacer(double speed, double epoch_time)
    : speed_(speed), epoch_time_(epoch_time) {}

bool ReplayPacer::pace(double event_time) {
  return pace(event_time, nullptr);
}

bool ReplayPacer::pace(double event_time,
                       const std::function<bool()>& stop) {
  if (speed_ <= 0.0) {
    return true;  // max-speed mode: no pacing, no clock reads
  }
  if (!have_origin_) {
    wall_origin_ = std::chrono::steady_clock::now();
    have_origin_ = true;
  }
  // Reordered traces (event-level faults) have non-monotonic times; a
  // negative offset simply means "due already".
  const double due_offset = (event_time - epoch_time_) / speed_;
  const auto due =
      wall_origin_ +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(due_offset));
  auto now = std::chrono::steady_clock::now();
  while (due - now > std::chrono::duration<double>(kPacingSlackSeconds)) {
    if (stop && stop()) {
      return false;
    }
    std::this_thread::sleep_for(std::min<std::chrono::steady_clock::duration>(
        due - now, kPacingChunk));
    now = std::chrono::steady_clock::now();
  }
  const double behind = std::chrono::duration<double>(now - due).count();
  if (behind > max_behind_) {
    max_behind_ = behind;
  }
  return true;
}

std::uint64_t replay_trace(TraceReplayer& replayer, TrackerManager& manager,
                           double speed) {
  std::uint64_t pushed = 0;
  FluxEvent event;
  std::optional<ReplayPacer> pacer;
  while (replayer.next(event)) {
    if (speed > 0.0) {
      if (!pacer) {
        // The first event's timestamp is the stream epoch.
        pacer.emplace(speed, event.time);
      }
      pacer->pace(event.time);
    }
    if (manager.push(event)) {
      ++pushed;
    }
  }
  return pushed;
}

std::uint64_t replay_trace_file(const std::string& path,
                                TrackerManager& manager, double speed) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("replay_trace_file: cannot open " + path);
  }
  TraceReplayer replayer(in);
  return replay_trace(replayer, manager, speed);
}

}  // namespace fluxfp::stream
