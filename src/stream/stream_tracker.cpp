#include "stream/stream_tracker.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>

#include "obs/instrument.hpp"

namespace fluxfp::stream {

namespace {

std::vector<geom::Vec2> positions_from_graph(
    const net::UnitDiskGraph& graph,
    const std::vector<std::size_t>& nodes) {
  std::vector<geom::Vec2> out;
  out.reserve(nodes.size());
  for (std::size_t n : nodes) {
    out.push_back(graph.position(n));
  }
  return out;
}

geom::Rng seeded_rng(std::uint64_t seed) { return geom::Rng(seed); }

std::vector<core::Site> point_sites_of(const std::vector<geom::Vec2>& p) {
  std::vector<core::Site> sites;
  sites.reserve(p.size());
  for (geom::Vec2 v : p) {
    sites.push_back(core::point_site(v));
  }
  return sites;
}

}  // namespace

StreamTracker::StreamTracker(const core::ObservationModel& model,
                             const geom::Field& field,
                             std::vector<std::size_t> site_keys,
                             std::vector<core::Site> sites,
                             std::size_t num_users,
                             StreamTrackerConfig config, std::uint64_t seed)
    : model_(model.clone()),
      sniffer_nodes_(std::move(site_keys)),
      sites_(std::move(sites)),
      config_(config),
      rng_(seeded_rng(seed)),
      smc_(field, num_users, config.smc, rng_) {
  if (sniffer_nodes_.empty() || sniffer_nodes_.size() != sites_.size()) {
    throw std::invalid_argument(
        "StreamTracker: sniffer set empty or size mismatch");
  }
  if (!(config_.close_delay > 0.0) || config_.max_open_epochs == 0) {
    throw std::invalid_argument("StreamTracker: bad window config");
  }
  if (config_.expected_readings > sniffer_nodes_.size()) {
    throw std::invalid_argument(
        "StreamTracker: expected_readings exceeds the sniffer count");
  }
  node_slot_.reserve(sniffer_nodes_.size());
  for (std::size_t slot = 0; slot < sniffer_nodes_.size(); ++slot) {
    const auto node = static_cast<std::uint32_t>(sniffer_nodes_[slot]);
    if (!node_slot_.emplace(node, slot).second) {
      throw std::invalid_argument("StreamTracker: duplicate sniffer node");
    }
  }
}

StreamTracker::StreamTracker(const core::FluxModel& model,
                             std::vector<std::size_t> sniffer_nodes,
                             std::vector<geom::Vec2> sniffer_positions,
                             std::size_t num_users,
                             StreamTrackerConfig config, std::uint64_t seed)
    : StreamTracker(model, model.field(), std::move(sniffer_nodes),
                    point_sites_of(sniffer_positions), num_users, config,
                    seed) {}

StreamTracker::StreamTracker(const core::FluxModel& model,
                             const net::UnitDiskGraph& graph,
                             std::vector<std::size_t> sniffer_nodes,
                             std::size_t num_users,
                             StreamTrackerConfig config, std::uint64_t seed)
    : StreamTracker(model, sniffer_nodes,
                    positions_from_graph(graph, sniffer_nodes), num_users,
                    config, seed) {}

std::vector<EpochResult> StreamTracker::on_event(const FluxEvent& event) {
  std::vector<EpochResult> fired;
  now_ = std::max(now_, event.time);

  const auto slot_it = node_slot_.find(event.node);
  if (slot_it == node_slot_.end()) {
    ++stats_.unknown_node;
    FLUXFP_OBS_COUNTER_INC("fluxfp_stream_fold_unknown_node_total",
                           "Events from nodes outside the sniffer set");
    collect_ripe(fired);
    return fired;
  }
  if (fired_any_ && event.epoch <= last_fired_epoch_) {
    // Straggler for a window that already fired: the filtering step it
    // missed cannot be revisited (the SMC has moved on), so count it and
    // drop it — the paper's asynchronous updating tolerates the slot
    // simply having carried less evidence.
    ++stats_.late;
    FLUXFP_OBS_COUNTER_INC("fluxfp_stream_fold_late_total",
                           "Events for an already-fired epoch, dropped");
    collect_ripe(fired);
    return fired;
  }
  if (!open_.empty() && open_.rbegin()->first > event.epoch) {
    ++stats_.out_of_order;
    FLUXFP_OBS_COUNTER_INC(
        "fluxfp_stream_fold_out_of_order_total",
        "Events folded while a newer epoch window was already open");
  }

  Window& w = open_[event.epoch];
  if (w.readings.empty()) {
    w.readings.assign(sniffer_nodes_.size(), net::kMissingReading);
    w.seen.assign(sniffer_nodes_.size(), false);
  }
  const std::size_t slot = slot_it->second;
  if (w.seen[slot]) {
    ++stats_.duplicates;  // keep the latest report for the slot
    FLUXFP_OBS_COUNTER_INC("fluxfp_stream_fold_duplicate_total",
                           "Re-reports of a (epoch, node) slot");
  } else {
    w.seen[slot] = true;
    ++w.seen_count;
  }
  w.readings[slot] = event.reading;
  w.newest_time = std::max(w.newest_time, event.time);
  ++stats_.events;
  FLUXFP_OBS_COUNTER_INC("fluxfp_stream_fold_events_total",
                         "Events folded into epoch windows");

  collect_ripe(fired);
  return fired;
}

void StreamTracker::collect_ripe(std::vector<EpochResult>& out) {
  while (!open_.empty()) {
    const Window& oldest = open_.begin()->second;
    const bool complete = config_.expected_readings > 0 &&
                          oldest.seen_count >= config_.expected_readings;
    const bool lapsed = now_ - oldest.newest_time > config_.close_delay;
    const bool crowded = open_.size() > config_.max_open_epochs;
    if (!complete && !lapsed && !crowded) {
      return;
    }
    if (crowded && !complete && !lapsed) {
      ++stats_.forced_closes;
      FLUXFP_OBS_COUNTER_INC("fluxfp_stream_forced_closes_total",
                             "Windows force-closed by max_open_epochs");
    }
    out.push_back(fire_oldest());
  }
}

EpochResult StreamTracker::fire_oldest() {
  const auto it = open_.begin();
  const std::uint32_t epoch = it->first;
  Window window = std::move(it->second);
  open_.erase(it);

  EpochResult result;
  result.epoch = epoch;
  // Observation time: the window's newest reading. Clamped to stay
  // strictly increasing across steps (SmcTracker's contract) even when
  // reordering left an older epoch with a newer timestamp.
  const double bump = 1e-9 * (1.0 + std::abs(last_step_time_));
  result.time = std::max(window.newest_time, last_step_time_ + bump);

  {
    FLUXFP_OBS_SPAN(step_span, "fluxfp_stream_epoch_filter_micros",
                    "Wall-clock cost of one epoch window's SMC step");
    const auto t0 = std::chrono::steady_clock::now();
    // The sharing constructor: the model is shared, not cloned, so a
    // fired window costs one sites copy and no model copy.
    const core::SparseObjective objective(model_, sites_,
                                          std::move(window.readings),
                                          std::vector<bool>());
    result.readings = objective.sample_count();
    result.step = smc_.step(result.time, objective, rng_, epoch_arena_);
    const auto t1 = std::chrono::steady_clock::now();
    result.filter_micros =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
  }

  result.estimates.resize(smc_.num_users());
  for (std::size_t u = 0; u < smc_.num_users(); ++u) {
    result.estimates[u] = smc_.estimate(u);
  }

  last_step_time_ = result.time;
  fired_any_ = true;
  last_fired_epoch_ = epoch;
  ++stats_.epochs_fired;
  FLUXFP_OBS_COUNTER_INC("fluxfp_stream_epochs_fired_total",
                         "Epoch windows fired through the SMC");
  stats_.filter_micros.push_back(result.filter_micros);
  return result;
}

StreamTrackerState StreamTracker::save_state() const {
  StreamTrackerState state;
  {
    // mt19937_64's stream operators serialize the engine's integral words
    // in decimal; reading them back reproduces the exact stream position.
    std::ostringstream os;
    os << rng_;
    state.rng = os.str();
  }
  state.smc = smc_.save_state();
  state.open.reserve(open_.size());
  for (const auto& [epoch, window] : open_) {
    WindowState ws;
    ws.epoch = epoch;
    ws.newest_time = window.newest_time;
    ws.seen_count = window.seen_count;
    ws.readings = window.readings;
    ws.seen = window.seen;
    state.open.push_back(std::move(ws));
  }
  state.now = now_;
  state.last_step_time = last_step_time_;
  state.fired_any = fired_any_;
  state.last_fired_epoch = last_fired_epoch_;
  state.stats = stats_;
  return state;
}

void StreamTracker::restore_state(const StreamTrackerState& state) {
  const std::size_t slots = sniffer_nodes_.size();
  for (std::size_t i = 0; i < state.open.size(); ++i) {
    const WindowState& ws = state.open[i];
    if (ws.readings.size() != slots || ws.seen.size() != slots ||
        ws.seen_count > slots) {
      throw std::invalid_argument(
          "StreamTracker: snapshot window does not match this tracker's "
          "sniffer set");
    }
    if (i > 0 && state.open[i - 1].epoch >= ws.epoch) {
      throw std::invalid_argument(
          "StreamTracker: snapshot windows not in ascending epoch order");
    }
  }
  geom::Rng restored_rng;
  {
    std::istringstream is(state.rng);
    if (!(is >> restored_rng)) {
      throw std::invalid_argument(
          "StreamTracker: snapshot RNG stream is unparseable");
    }
  }
  // All validation above throws before any member is touched, so a bad
  // snapshot never leaves the tracker half-restored.
  smc_.restore_state(state.smc);  // validates its own shapes; throws first
  rng_ = restored_rng;
  open_.clear();
  for (const WindowState& ws : state.open) {
    Window w;
    w.readings = ws.readings;
    w.seen = ws.seen;
    w.seen_count = ws.seen_count;
    w.newest_time = ws.newest_time;
    open_.emplace(ws.epoch, std::move(w));
  }
  now_ = state.now;
  last_step_time_ = state.last_step_time;
  fired_any_ = state.fired_any;
  last_fired_epoch_ = state.last_fired_epoch;
  stats_ = state.stats;
}

std::vector<EpochResult> StreamTracker::flush() {
  std::vector<EpochResult> fired;
  fired.reserve(open_.size());
  while (!open_.empty()) {
    fired.push_back(fire_oldest());
  }
  return fired;
}

}  // namespace fluxfp::stream
