#include "stream/event_queue.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/instrument.hpp"

namespace fluxfp::stream {

std::vector<FluxEvent> merge_by_time(
    std::span<const std::vector<FluxEvent>> streams) {
  std::vector<FluxEvent> merged;
  std::size_t total = 0;
  for (const auto& s : streams) {
    total += s.size();
  }
  merged.reserve(total);
  // k-way merge by repeated minimum — k (session count) is small and the
  // stability requirement (ties keep the earlier stream first) falls out
  // of the strict < comparison in input order.
  std::vector<std::size_t> cursor(streams.size(), 0);
  for (std::size_t taken = 0; taken < total; ++taken) {
    std::size_t best = streams.size();
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (cursor[s] >= streams[s].size()) {
        continue;
      }
      if (best == streams.size() ||
          streams[s][cursor[s]].time < streams[best][cursor[best]].time) {
        best = s;
      }
    }
    merged.push_back(streams[best][cursor[best]++]);
  }
  return merged;
}

EventQueue::EventQueue(std::size_t capacity, QueuePolicy policy)
    : capacity_(capacity), policy_(policy) {
  if (capacity == 0) {
    throw std::invalid_argument("EventQueue: capacity must be >= 1");
  }
}

bool EventQueue::push(const FluxEvent& event) {
  bool evicted = false;
  support::UniqueLock lock(mutex_);
  if (policy_ == QueuePolicy::kBlock) {
    not_full_.wait(lock.native(), [&] {
      mutex_.assert_held();  // predicate runs under the re-acquired lock
      return closed_ || items_.size() < capacity_;
    });
    if (closed_) {
      return false;
    }
  } else {
    if (closed_) {
      return false;
    }
    if (items_.size() >= capacity_) {
      items_.pop_front();
      ++stats_.dropped;
      evicted = true;
    }
  }
  items_.push_back(event);
  ++stats_.pushed;
  stats_.max_depth = std::max(stats_.max_depth, items_.size());
  lock.unlock();
  not_empty_.notify_one();
  // Obs mirrors of QueueStats, recorded outside the critical section.
  // Accepted pushes are content-driven (stable); evictions depend on how
  // fast the consumer drains, i.e. on scheduling.
  FLUXFP_OBS_COUNTER_INC("fluxfp_stream_queue_pushed_total",
                         "Events accepted by ingest queues");
  if (evicted) {
    FLUXFP_OBS_COUNTER_INC_SCHED("fluxfp_stream_queue_dropped_total",
                                 "Oldest-event evictions under kDropOldest");
  }
  return true;
}

bool EventQueue::pop(FluxEvent& out) {
  support::UniqueLock lock(mutex_);
  not_empty_.wait(lock.native(), [&] {
    mutex_.assert_held();  // predicate runs under the re-acquired lock
    return closed_ || !items_.empty();
  });
  if (items_.empty()) {
    return false;  // closed and drained
  }
  out = items_.front();
  items_.pop_front();
  ++stats_.popped;
  lock.unlock();
  not_full_.notify_one();
  FLUXFP_OBS_COUNTER_INC("fluxfp_stream_queue_popped_total",
                         "Events handed to consumers");
  return true;
}

bool EventQueue::try_pop(FluxEvent& out) {
  support::UniqueLock lock(mutex_);
  if (items_.empty()) {
    return false;
  }
  out = items_.front();
  items_.pop_front();
  ++stats_.popped;
  lock.unlock();
  not_full_.notify_one();
  FLUXFP_OBS_COUNTER_INC("fluxfp_stream_queue_popped_total",
                         "Events handed to consumers");
  return true;
}

bool EventQueue::evict_one(std::uint32_t user) {
  support::UniqueLock lock(mutex_);
  for (auto it = items_.begin(); it != items_.end(); ++it) {
    if (it->user == user) {
      items_.erase(it);
      ++stats_.evicted;
      lock.unlock();
      not_full_.notify_one();
      FLUXFP_OBS_COUNTER_INC_SCHED(
          "fluxfp_stream_queue_evicted_total",
          "Targeted removals via evict_one (priority displacement)");
      return true;
    }
  }
  return false;
}

void EventQueue::close() {
  {
    support::MutexLock lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool EventQueue::closed() const {
  support::MutexLock lock(mutex_);
  return closed_;
}

std::size_t EventQueue::size() const {
  support::MutexLock lock(mutex_);
  return items_.size();
}

QueueStats EventQueue::stats() const {
  support::MutexLock lock(mutex_);
  return stats_;
}

}  // namespace fluxfp::stream
