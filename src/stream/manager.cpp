#include "stream/manager.hpp"

#include <algorithm>
#include <stdexcept>

#include "numeric/parallel.hpp"
#include "obs/instrument.hpp"

#if defined(FLUXFP_OBS_ENABLED)
#include <string>

#include "obs/obs.hpp"
#endif

namespace fluxfp::stream {

TrackerManager::TrackerManager(ManagerConfig config) : config_(config) {
  if (config_.workers == 0) {
    throw std::invalid_argument("TrackerManager: workers must be >= 1");
  }
  if (config_.queue_capacity == 0) {
    throw std::invalid_argument(
        "TrackerManager: queue_capacity must be >= 1");
  }
}

TrackerManager::~TrackerManager() {
  if (started_.load(std::memory_order_relaxed) &&
      !finished_.load(std::memory_order_relaxed)) {
    finish();
  }
}

void TrackerManager::add_session(std::uint32_t user, StreamTracker tracker,
                                 SessionOptions options) {
  if (started_.load(std::memory_order_relaxed)) {
    throw std::logic_error(
        "TrackerManager: sessions must be registered before start()");
  }
  if (!user_index_.emplace(user, sessions_.size()).second) {
    throw std::invalid_argument("TrackerManager: duplicate user id");
  }
  sessions_.push_back({user, std::move(tracker), options, {}});
}

void TrackerManager::start() {
  if (started_.load(std::memory_order_relaxed)) {
    throw std::logic_error("TrackerManager: already started");
  }
  if (sessions_.empty()) {
    throw std::logic_error("TrackerManager: no sessions registered");
  }
  const std::size_t workers = std::min(config_.workers, sessions_.size());
  config_.workers = workers;
  queues_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    queues_.push_back(
        std::make_unique<EventQueue>(config_.queue_capacity, config_.policy));
  }
  {
    // No worker exists yet, but the admission ledger is flow-state:
    // initialize it under its mutex so there is exactly one access regime
    // (this is what the capability analysis checks).
    support::MutexLock lock(flow_mutex_);
    queued_.assign(sessions_.size(), 0);
    if (config_.tenant_quota > 0) {
      for (std::size_t i = 0; i < sessions_.size(); ++i) {
        tenant_in_flight_[sessions_[i].options.tenant] = 0;
        tenant_sessions_[sessions_[i].options.tenant].push_back(i);
      }
    }
  }
  started_.store(true, std::memory_order_relaxed);
#if defined(FLUXFP_OBS_ENABLED)
  // Shard gauges carry the worker index in the name, so the metric SET
  // depends on the layout — everything here is tagged kScheduling except
  // the layout-independent session total. set() is safe: start() runs on
  // one thread, before any worker exists.
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.gauge("fluxfp_stream_sessions", "Registered tracking sessions")
        .set(static_cast<double>(sessions_.size()));
    reg.gauge("fluxfp_stream_workers", "Worker threads sessions shard over",
              obs::Determinism::kScheduling)
        .set(static_cast<double>(workers));
    for (std::size_t w = 0; w < workers; ++w) {
      // Round-robin pinning: worker w owns sessions w, w+workers, ...
      const std::size_t owned = (sessions_.size() - w - 1) / workers + 1;
      reg.gauge("fluxfp_stream_shard" + std::to_string(w) + "_sessions",
                "Sessions pinned to this shard",
                obs::Determinism::kScheduling)
          .set(static_cast<double>(owned));
    }
  }
#endif
  start_time_ = std::chrono::steady_clock::now();
  threads_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

PushStatus TrackerManager::admit(std::size_t session_index) {
  const std::uint32_t tenant = sessions_[session_index].options.tenant;
  const std::uint32_t priority = sessions_[session_index].options.priority;
  support::UniqueLock lock(flow_mutex_);
  std::uint64_t& in_flight = tenant_in_flight_.at(tenant);
  if (in_flight >= config_.tenant_quota) {
    switch (config_.admission) {
      case AdmissionPolicy::kBlock: {
        ++flow_waiters_;
        flow_cv_.wait(lock.native(), [&] {
          flow_mutex_.assert_held();  // predicate runs under the lock
          return flow_closed_ || in_flight < config_.tenant_quota;
        });
        --flow_waiters_;
        if (flow_closed_) {
          return PushStatus::kClosed;
        }
        break;
      }
      case AdmissionPolicy::kShedNewest: {
        ++shed_;
        FLUXFP_OBS_COUNTER_INC_SCHED(
            "fluxfp_stream_quota_shed_total",
            "Events shed because their tenant was over quota");
        return PushStatus::kShedQuota;
      }
      case AdmissionPolicy::kShedLowestPriority: {
        // Victim: the tenant's lowest-priority session that still has
        // queued events and ranks strictly below the incoming session.
        const std::vector<std::size_t>& members =
            tenant_sessions_.at(tenant);
        std::size_t victim = sessions_.size();
        for (const std::size_t m : members) {
          if (queued_[m] == 0 || sessions_[m].options.priority >= priority) {
            continue;
          }
          if (victim == sessions_.size() ||
              sessions_[m].options.priority <
                  sessions_[victim].options.priority) {
            victim = m;
          }
        }
        if (victim == sessions_.size()) {
          ++shed_;
          FLUXFP_OBS_COUNTER_INC_SCHED(
              "fluxfp_stream_quota_shed_total",
              "Events shed because their tenant was over quota");
          return PushStatus::kShedQuota;
        }
        // Lock order is flow -> queue; workers take them strictly in
        // sequence (pop returns before flow is locked), so no cycle.
        if (queues_[victim % queues_.size()]->evict_one(
                sessions_[victim].user)) {
          --in_flight;
          --queued_[victim];
          // The evicted event will never be popped: take it back out of
          // the quiesce ledger so processed can still catch up to routed.
          --routed_flow_;
          FLUXFP_OBS_COUNTER_INC_SCHED(
              "fluxfp_stream_quota_evicted_total",
              "Queued events displaced by a higher-priority session");
        }
        // Evict failure means the worker drained the victim's event in
        // the meantime — the quota has room either way.
        break;
      }
    }
  }
  ++in_flight;
  ++queued_[session_index];
  return PushStatus::kAccepted;
}

PushStatus TrackerManager::offer(const FluxEvent& event) {
  if (!started_.load(std::memory_order_relaxed) ||
      finished_.load(std::memory_order_relaxed)) {
    return PushStatus::kClosed;
  }
  const auto it = user_index_.find(event.user);
  if (it == user_index_.end()) {
    unknown_user_.fetch_add(1, std::memory_order_relaxed);
    FLUXFP_OBS_COUNTER_INC("fluxfp_stream_unknown_user_total",
                           "Pushes for sessions never registered");
    return PushStatus::kUnknownUser;
  }
  const std::size_t idx = it->second;
  const bool quota = config_.tenant_quota > 0;
  if (quota) {
    const PushStatus admitted = admit(idx);
    if (admitted != PushStatus::kAccepted) {
      return admitted;
    }
  }
  if (!queues_[idx % queues_.size()]->push(event)) {
    if (quota) {
      support::MutexLock lock(flow_mutex_);
      --tenant_in_flight_.at(sessions_[idx].options.tenant);
      --queued_[idx];
    }
    return PushStatus::kClosed;
  }
  {
    support::MutexLock lock(flow_mutex_);
    ++routed_flow_;
  }
  return PushStatus::kAccepted;
}

void TrackerManager::worker_loop(std::size_t worker) {
  // Candidate evaluation inside the SMC steps runs serially inline on this
  // thread: the service's parallelism axis is sessions, not candidates,
  // and the shared pool admits one external caller at a time.
  numeric::SerialRegionGuard serial;
  EventQueue& queue = *queues_[worker];
  const bool quota = config_.tenant_quota > 0;
  FluxEvent event;
  while (queue.pop(event)) {
    // Routing guarantees the session belongs to this worker.
    const std::size_t idx = user_index_.at(event.user);
    Session& s = sessions_[idx];
    auto fired = s.tracker.on_event(event);
    epochs_fired_live_.fetch_add(fired.size(), std::memory_order_relaxed);
    for (auto& r : fired) {
      s.results.push_back(std::move(r));
    }
    processed_live_.fetch_add(1, std::memory_order_relaxed);
    // Flow accounting AFTER the results landed: a quiesce() that observes
    // processed == routed therefore also observes every result (the mutex
    // handshake publishes them).
    {
      support::MutexLock lock(flow_mutex_);
      ++processed_flow_;
      if (quota) {
        --tenant_in_flight_.at(s.options.tenant);
        --queued_[idx];
      }
    }
    flow_cv_.notify_all();
  }
  // Stream over: fire every still-open window, in session order.
  for (std::size_t i = worker; i < sessions_.size();
       i += queues_.size()) {
    Session& s = sessions_[i];
    auto fired = s.tracker.flush();
    epochs_fired_live_.fetch_add(fired.size(), std::memory_order_relaxed);
    for (auto& r : fired) {
      s.results.push_back(std::move(r));
    }
  }
}

void TrackerManager::quiesce() {
  if (!started_.load(std::memory_order_relaxed) ||
      finished_.load(std::memory_order_relaxed)) {
    return;
  }
  if (config_.policy != QueuePolicy::kBlock) {
    // kDropOldest evicts events that will never be popped, so "processed
    // catches up to routed" is unreachable — and a checkpoint cut would
    // not be an event boundary anyway.
    throw std::logic_error(
        "TrackerManager: quiesce()/checkpoint() while running require "
        "QueuePolicy::kBlock");
  }
  support::UniqueLock lock(flow_mutex_);
  flow_cv_.wait(lock.native(), [&] {
    flow_mutex_.assert_held();  // predicate runs under the lock
    return processed_flow_ == routed_flow_;
  });
}

ManagerCheckpoint TrackerManager::checkpoint() {
  quiesce();  // no-op unless running
  ManagerCheckpoint cp;
  cp.workers = static_cast<std::uint32_t>(config_.workers);
  cp.sessions.reserve(sessions_.size());
  for (const Session& s : sessions_) {
    SessionCheckpoint sc;
    sc.user = s.user;
    sc.num_users = static_cast<std::uint32_t>(s.tracker.num_users());
    const std::vector<std::size_t>& nodes = s.tracker.sniffer_nodes();
    sc.sniffer_nodes.assign(nodes.begin(), nodes.end());
    sc.state = s.tracker.save_state();
    cp.sessions.push_back(std::move(sc));
  }
  return cp;
}

void TrackerManager::restore(const ManagerCheckpoint& cp) {
  if (started_.load(std::memory_order_relaxed)) {
    throw std::logic_error(
        "TrackerManager: restore() must run before start()");
  }
  if (cp.sessions.size() != sessions_.size()) {
    throw std::invalid_argument(
        "TrackerManager: checkpoint session count does not match the "
        "registered sessions");
  }
  // Validate the whole image against the registered sessions first, then
  // apply — a mismatch must not leave some sessions restored and others
  // fresh.
  std::vector<std::size_t> targets;
  targets.reserve(cp.sessions.size());
  for (const SessionCheckpoint& sc : cp.sessions) {
    const auto it = user_index_.find(sc.user);
    if (it == user_index_.end()) {
      throw std::invalid_argument(
          "TrackerManager: checkpoint session for an unregistered user");
    }
    const StreamTracker& t = sessions_[it->second].tracker;
    const std::vector<std::size_t>& nodes = t.sniffer_nodes();
    const bool nodes_match =
        sc.sniffer_nodes.size() == nodes.size() &&
        std::equal(nodes.begin(), nodes.end(), sc.sniffer_nodes.begin(),
                   [](std::size_t a, std::uint64_t b) {
                     return static_cast<std::uint64_t>(a) == b;
                   });
    if (!nodes_match || sc.num_users != t.num_users()) {
      throw std::invalid_argument(
          "TrackerManager: checkpoint session does not match the "
          "registered deployment (sniffer set or user count)");
    }
    targets.push_back(it->second);
  }
  for (std::size_t i = 0; i < cp.sessions.size(); ++i) {
    sessions_[targets[i]].tracker.restore_state(cp.sessions[i].state);
  }
}

void TrackerManager::finish() {
  if (!started_.load(std::memory_order_relaxed) ||
      finished_.load(std::memory_order_relaxed)) {
    return;
  }
  {
    // Wake producers blocked on a tenant quota before closing the queues,
    // so shutdown never waits on a pop that will not come.
    support::MutexLock lock(flow_mutex_);
    flow_closed_ = true;
  }
  flow_cv_.notify_all();
  for (auto& q : queues_) {
    q->close();
  }
  for (std::thread& t : threads_) {
    t.join();
  }
  finished_.store(true, std::memory_order_relaxed);
  const auto end = std::chrono::steady_clock::now();
  final_stats_.wall_seconds =
      std::chrono::duration<double>(end - start_time_).count();
  for (const auto& q : queues_) {
    const QueueStats qs = q->stats();
    final_stats_.events_routed += qs.pushed;
    final_stats_.events_processed += qs.popped;
    final_stats_.events_dropped += qs.dropped;
    final_stats_.events_evicted += qs.evicted;
  }
#if defined(FLUXFP_OBS_ENABLED)
  if (obs::enabled()) {
    for (std::size_t w = 0; w < queues_.size(); ++w) {
      obs::MetricsRegistry::global()
          .gauge("fluxfp_stream_shard" + std::to_string(w) +
                     "_queue_max_depth",
                 "High-water mark of this shard's ingest backlog",
                 obs::Determinism::kScheduling)
          .set(static_cast<double>(queues_[w]->stats().max_depth));
    }
  }
#endif
  final_stats_.unknown_user = unknown_user_.load(std::memory_order_relaxed);
  {
    // Copy out under the lock; final_stats_ itself is coordinator-owned
    // (workers are joined), so it is not flow-state and stays unguarded.
    std::uint64_t shed = 0;
    {
      support::MutexLock lock(flow_mutex_);
      shed = shed_;
    }
    final_stats_.events_shed = shed;
  }
  for (const Session& s : sessions_) {
    const StreamStats& st = s.tracker.stats();
    final_stats_.epochs_fired += st.epochs_fired;
    final_stats_.filter_micros.insert(final_stats_.filter_micros.end(),
                                      st.filter_micros.begin(),
                                      st.filter_micros.end());
  }
  final_stats_.events_per_second =
      final_stats_.wall_seconds > 0.0
          ? static_cast<double>(final_stats_.events_processed) /
                final_stats_.wall_seconds
          : 0.0;
}

std::vector<std::uint32_t> TrackerManager::users() const {
  std::vector<std::uint32_t> out;
  out.reserve(sessions_.size());
  for (const Session& s : sessions_) {
    out.push_back(s.user);
  }
  return out;
}

const TrackerManager::Session& TrackerManager::find_session(
    std::uint32_t user) const {
  const auto it = user_index_.find(user);
  if (it == user_index_.end()) {
    throw std::invalid_argument("TrackerManager: unknown user");
  }
  return sessions_[it->second];
}

const std::vector<EpochResult>& TrackerManager::results(
    std::uint32_t user) const {
  return find_session(user).results;
}

const StreamTracker& TrackerManager::session(std::uint32_t user) const {
  return find_session(user).tracker;
}

const SessionOptions& TrackerManager::session_options(
    std::uint32_t user) const {
  return find_session(user).options;
}

ManagerStats TrackerManager::stats() const { return final_stats_; }

}  // namespace fluxfp::stream
