#include "stream/manager.hpp"

#include <stdexcept>

#include "numeric/parallel.hpp"
#include "obs/instrument.hpp"

#if defined(FLUXFP_OBS_ENABLED)
#include <string>

#include "obs/obs.hpp"
#endif

namespace fluxfp::stream {

TrackerManager::TrackerManager(ManagerConfig config) : config_(config) {
  if (config_.workers == 0) {
    throw std::invalid_argument("TrackerManager: workers must be >= 1");
  }
  if (config_.queue_capacity == 0) {
    throw std::invalid_argument(
        "TrackerManager: queue_capacity must be >= 1");
  }
}

TrackerManager::~TrackerManager() {
  if (started_ && !finished_) {
    finish();
  }
}

void TrackerManager::add_session(std::uint32_t user, StreamTracker tracker) {
  if (started_) {
    throw std::logic_error(
        "TrackerManager: sessions must be registered before start()");
  }
  if (!user_index_.emplace(user, sessions_.size()).second) {
    throw std::invalid_argument("TrackerManager: duplicate user id");
  }
  sessions_.push_back({user, std::move(tracker), {}});
}

void TrackerManager::start() {
  if (started_) {
    throw std::logic_error("TrackerManager: already started");
  }
  if (sessions_.empty()) {
    throw std::logic_error("TrackerManager: no sessions registered");
  }
  const std::size_t workers = std::min(config_.workers, sessions_.size());
  config_.workers = workers;
  queues_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    queues_.push_back(
        std::make_unique<EventQueue>(config_.queue_capacity, config_.policy));
  }
  started_ = true;
#if defined(FLUXFP_OBS_ENABLED)
  // Shard gauges carry the worker index in the name, so the metric SET
  // depends on the layout — everything here is tagged kScheduling except
  // the layout-independent session total. set() is safe: start() runs on
  // one thread, before any worker exists.
  if (obs::enabled()) {
    auto& reg = obs::MetricsRegistry::global();
    reg.gauge("fluxfp_stream_sessions", "Registered tracking sessions")
        .set(static_cast<double>(sessions_.size()));
    reg.gauge("fluxfp_stream_workers", "Worker threads sessions shard over",
              obs::Determinism::kScheduling)
        .set(static_cast<double>(workers));
    for (std::size_t w = 0; w < workers; ++w) {
      // Round-robin pinning: worker w owns sessions w, w+workers, ...
      const std::size_t owned = (sessions_.size() - w - 1) / workers + 1;
      reg.gauge("fluxfp_stream_shard" + std::to_string(w) + "_sessions",
                "Sessions pinned to this shard",
                obs::Determinism::kScheduling)
          .set(static_cast<double>(owned));
    }
  }
#endif
  start_time_ = std::chrono::steady_clock::now();
  threads_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

bool TrackerManager::push(const FluxEvent& event) {
  if (!started_ || finished_) {
    return false;
  }
  const auto it = user_index_.find(event.user);
  if (it == user_index_.end()) {
    unknown_user_.fetch_add(1, std::memory_order_relaxed);
    FLUXFP_OBS_COUNTER_INC("fluxfp_stream_unknown_user_total",
                           "Pushes for sessions never registered");
    return false;
  }
  return queues_[it->second % queues_.size()]->push(event);
}

void TrackerManager::worker_loop(std::size_t worker) {
  // Candidate evaluation inside the SMC steps runs serially inline on this
  // thread: the service's parallelism axis is sessions, not candidates,
  // and the shared pool admits one external caller at a time.
  numeric::SerialRegionGuard serial;
  EventQueue& queue = *queues_[worker];
  FluxEvent event;
  while (queue.pop(event)) {
    // Routing guarantees the session belongs to this worker.
    Session& s = sessions_[user_index_.at(event.user)];
    auto fired = s.tracker.on_event(event);
    for (auto& r : fired) {
      s.results.push_back(std::move(r));
    }
  }
  // Stream over: fire every still-open window, in session order.
  for (std::size_t i = worker; i < sessions_.size();
       i += queues_.size()) {
    Session& s = sessions_[i];
    auto fired = s.tracker.flush();
    for (auto& r : fired) {
      s.results.push_back(std::move(r));
    }
  }
}

void TrackerManager::finish() {
  if (!started_ || finished_) {
    return;
  }
  for (auto& q : queues_) {
    q->close();
  }
  for (std::thread& t : threads_) {
    t.join();
  }
  finished_ = true;
  const auto end = std::chrono::steady_clock::now();
  final_stats_.wall_seconds =
      std::chrono::duration<double>(end - start_time_).count();
  for (const auto& q : queues_) {
    const QueueStats qs = q->stats();
    final_stats_.events_routed += qs.pushed;
    final_stats_.events_processed += qs.popped;
    final_stats_.events_dropped += qs.dropped;
  }
#if defined(FLUXFP_OBS_ENABLED)
  if (obs::enabled()) {
    for (std::size_t w = 0; w < queues_.size(); ++w) {
      obs::MetricsRegistry::global()
          .gauge("fluxfp_stream_shard" + std::to_string(w) +
                     "_queue_max_depth",
                 "High-water mark of this shard's ingest backlog",
                 obs::Determinism::kScheduling)
          .set(static_cast<double>(queues_[w]->stats().max_depth));
    }
  }
#endif
  final_stats_.unknown_user = unknown_user_.load(std::memory_order_relaxed);
  for (const Session& s : sessions_) {
    const StreamStats& st = s.tracker.stats();
    final_stats_.epochs_fired += st.epochs_fired;
    final_stats_.filter_micros.insert(final_stats_.filter_micros.end(),
                                      st.filter_micros.begin(),
                                      st.filter_micros.end());
  }
  final_stats_.events_per_second =
      final_stats_.wall_seconds > 0.0
          ? static_cast<double>(final_stats_.events_processed) /
                final_stats_.wall_seconds
          : 0.0;
}

const TrackerManager::Session& TrackerManager::find_session(
    std::uint32_t user) const {
  const auto it = user_index_.find(user);
  if (it == user_index_.end()) {
    throw std::invalid_argument("TrackerManager: unknown user");
  }
  return sessions_[it->second];
}

const std::vector<EpochResult>& TrackerManager::results(
    std::uint32_t user) const {
  return find_session(user).results;
}

const StreamTracker& TrackerManager::session(std::uint32_t user) const {
  return find_session(user).tracker;
}

ManagerStats TrackerManager::stats() const { return final_stats_; }

}  // namespace fluxfp::stream
