#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/graph.hpp"
#include "sim/scenario.hpp"
#include "stream/event.hpp"

namespace fluxfp::stream {

/// Turns one observation window's flux map into the event burst the
/// session's sniffers would report: one FluxEvent per sniffer whose
/// (optionally §3.B-smoothed, see net::gather_readings) reading is present.
/// Sniffers whose reading is missing (net::kMissingReading — outage, burst
/// loss) emit NOTHING: in the streaming model an outage is the *absence* of
/// an event, and the window closes with that slot still missing. Events are
/// stamped with `time` and ordered by sniffer-list position.
std::vector<FluxEvent> window_events(const net::UnitDiskGraph& graph,
                                     const net::FluxMap& flux,
                                     std::span<const std::size_t> sniffers,
                                     std::uint32_t user, std::uint32_t epoch,
                                     double time, bool smooth = true);

/// As window_events, but from pre-gathered (possibly fault-corrupted)
/// readings aligned with `sniffers` — the streaming analogue of
/// eval::make_objective_from_readings. Missing readings emit nothing.
std::vector<FluxEvent> readings_events(std::span<const std::size_t> sniffers,
                                       std::span<const double> readings,
                                       std::uint32_t user,
                                       std::uint32_t epoch, double time);

/// The full event stream of one simulated session: every round of `obs`
/// becomes an epoch (epoch id = round index), windows with no flux at all
/// still emit their zero readings (a true zero is evidence). The result is
/// time-ordered and ready for a TraceRecorder or a TrackerManager.
std::vector<FluxEvent> scenario_events(const net::UnitDiskGraph& graph,
                                       std::span<const sim::RoundObservation> obs,
                                       std::span<const std::size_t> sniffers,
                                       std::uint32_t user, bool smooth = true);

}  // namespace fluxfp::stream
