#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "stream/event_queue.hpp"
#include "stream/stream_tracker.hpp"

namespace fluxfp::stream {

/// Sharding and backpressure policy of the tracking service.
struct ManagerConfig {
  /// Worker threads events are sharded over (>= 1). Each session is pinned
  /// to one worker; per-session event order is preserved by routing, so
  /// results are bit-identical at any worker count (under kBlock).
  std::size_t workers = 1;
  /// Per-worker ingest queue bound.
  std::size_t queue_capacity = 256;
  /// What a full ingest queue does to push() — see QueuePolicy. kDropOldest
  /// trades the lossless-delivery half of the determinism contract for
  /// bounded producer latency.
  QueuePolicy policy = QueuePolicy::kBlock;
};

/// Service-level counters, valid after finish().
struct ManagerStats {
  std::uint64_t events_routed = 0;     ///< accepted by push()
  std::uint64_t events_processed = 0;  ///< popped and folded by workers
  std::uint64_t events_dropped = 0;    ///< queue evictions (kDropOldest)
  std::uint64_t unknown_user = 0;      ///< pushes for unregistered sessions
  std::uint64_t epochs_fired = 0;
  double wall_seconds = 0.0;           ///< start() -> finish(), wall-clock
  double events_per_second = 0.0;      ///< processed / wall_seconds
  /// Per fired epoch, wall-clock filtering cost, merged across sessions in
  /// registration order (feed to eval::summarize_latencies for p50/p99).
  std::vector<double> filter_micros;
};

/// Shards many concurrent tracking sessions across worker threads: each
/// registered user (session) is pinned to one worker, each worker owns a
/// bounded ingest queue and folds its sessions' events through their
/// StreamTrackers, flushing them when the stream ends.
///
/// Determinism contract (the streaming extension of PR 2's): every session
/// owns its RNG (seeded at StreamTracker construction) and consumes its own
/// events in push order — routing never reorders a session's events, and
/// sessions never share mutable state. Under QueuePolicy::kBlock the same
/// pushed sequence therefore yields bit-identical per-user estimates at ANY
/// worker count. Worker threads hold a numeric::SerialRegionGuard, so the
/// per-step candidate evaluation runs inline and the shared pool is left to
/// single-threaded callers; the service's parallelism axis is sessions.
class TrackerManager {
 public:
  explicit TrackerManager(ManagerConfig config);
  /// Joins workers (as by finish()) if still running.
  ~TrackerManager();

  TrackerManager(const TrackerManager&) = delete;
  TrackerManager& operator=(const TrackerManager&) = delete;

  /// Registers a session before start(). Users are arbitrary ids; sessions
  /// are assigned to workers round-robin in registration order. Throws
  /// std::logic_error after start(), std::invalid_argument on a duplicate
  /// user.
  void add_session(std::uint32_t user, StreamTracker tracker);

  /// Spins up the workers. Throws std::logic_error when already started or
  /// no session is registered.
  void start();

  /// Routes one event to its session's worker. Returns false when the
  /// user is unknown (counted) or the service is shut down; under kBlock
  /// this call provides the backpressure. Any thread may push.
  bool push(const FluxEvent& event);

  /// Closes the ingest queues, drains and joins every worker (each worker
  /// flushes its sessions' open windows), and freezes the stats. Safe to
  /// call once; push() fails afterwards.
  void finish();

  bool started() const { return started_.load(); }
  bool finished() const { return finished_.load(); }
  std::size_t num_sessions() const { return sessions_.size(); }
  std::size_t workers() const { return config_.workers; }

  /// Per-epoch results of one session, in fired order. Valid after
  /// finish(). Throws std::invalid_argument on an unknown user.
  const std::vector<EpochResult>& results(std::uint32_t user) const;
  /// The session's tracker (final estimates, ingestion stats).
  const StreamTracker& session(std::uint32_t user) const;

  /// Aggregated counters; meaningful after finish().
  ManagerStats stats() const;

 private:
  struct Session {
    std::uint32_t user = 0;
    StreamTracker tracker;
    std::vector<EpochResult> results;
  };

  void worker_loop(std::size_t worker);
  const Session& find_session(std::uint32_t user) const;

  ManagerConfig config_;
  std::vector<Session> sessions_;
  std::unordered_map<std::uint32_t, std::size_t> user_index_;
  std::vector<std::unique_ptr<EventQueue>> queues_;  ///< one per worker
  std::vector<std::thread> threads_;
  std::atomic<bool> started_{false};
  std::atomic<bool> finished_{false};
  std::chrono::steady_clock::time_point start_time_;
  ManagerStats final_stats_;
  std::atomic<std::uint64_t> unknown_user_{0};
};

}  // namespace fluxfp::stream
