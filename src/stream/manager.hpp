#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "stream/checkpoint.hpp"
#include "stream/event_queue.hpp"
#include "stream/stream_tracker.hpp"
#include "support/thread_annotations.hpp"

namespace fluxfp::stream {

/// What the service does with an event whose tenant is over quota —
/// graceful degradation under overload, chosen per deployment.
enum class AdmissionPolicy {
  /// offer() blocks until the tenant drains below quota — lossless
  /// backpressure, the default. A blocked producer observes finish()
  /// promptly (same contract as EventQueue close()).
  kBlock,
  /// The incoming event is shed (offer() returns kShedQuota) — newest
  /// work is the cheapest to lose when the tracker will re-estimate next
  /// epoch anyway.
  kShedNewest,
  /// The incoming event displaces the oldest queued event of the
  /// tenant's lowest-priority session when the incoming session outranks
  /// it; otherwise the incoming event is shed. Keeps high-priority
  /// sessions tracking through a low-priority flood.
  kShedLowestPriority,
};

/// Admission outcome of one offer()ed event.
enum class PushStatus {
  kAccepted,     ///< routed to the session's worker queue
  kUnknownUser,  ///< no such session registered (counted)
  kShedQuota,    ///< tenant over quota and policy chose to shed (counted)
  kClosed,       ///< service not started, finished, or closing
};

/// Per-session admission attributes. Sessions of one tenant share that
/// tenant's quota; priority orders sessions within a tenant for
/// kShedLowestPriority (higher value = more important).
struct SessionOptions {
  std::uint32_t tenant = 0;
  std::uint32_t priority = 0;
};

/// Sharding and backpressure policy of the tracking service.
struct ManagerConfig {
  /// Worker threads events are sharded over (>= 1). Each session is pinned
  /// to one worker; per-session event order is preserved by routing, so
  /// results are bit-identical at any worker count (under kBlock).
  std::size_t workers = 1;
  /// Per-worker ingest queue bound.
  std::size_t queue_capacity = 256;
  /// What a full ingest queue does to push() — see QueuePolicy. kDropOldest
  /// trades the lossless-delivery half of the determinism contract for
  /// bounded producer latency.
  QueuePolicy policy = QueuePolicy::kBlock;
  /// Max in-flight (queued, not yet folded) events per tenant; 0 disables
  /// admission control entirely — the default keeps the no-quota hot path
  /// free of admission bookkeeping.
  std::size_t tenant_quota = 0;
  /// What an over-quota tenant's next event meets. Ignored while
  /// tenant_quota == 0.
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
};

/// Service-level counters, valid after finish().
struct ManagerStats {
  std::uint64_t events_routed = 0;     ///< accepted by offer()/push()
  std::uint64_t events_processed = 0;  ///< popped and folded by workers
  std::uint64_t events_dropped = 0;    ///< queue evictions (kDropOldest)
  std::uint64_t events_shed = 0;       ///< rejected by the admission policy
  std::uint64_t events_evicted = 0;    ///< displaced by a higher priority
  std::uint64_t unknown_user = 0;      ///< pushes for unregistered sessions
  std::uint64_t epochs_fired = 0;
  double wall_seconds = 0.0;           ///< start() -> finish(), wall-clock
  double events_per_second = 0.0;      ///< processed / wall_seconds
  /// Per fired epoch, wall-clock filtering cost, merged across sessions in
  /// registration order (feed to eval::summarize_latencies for p50/p99).
  std::vector<double> filter_micros;
};

/// Shards many concurrent tracking sessions across worker threads: each
/// registered user (session) is pinned to one worker, each worker owns a
/// bounded ingest queue and folds its sessions' events through their
/// StreamTrackers, flushing them when the stream ends.
///
/// Determinism contract (the streaming extension of PR 2's): every session
/// owns its RNG (seeded at StreamTracker construction) and consumes its own
/// events in push order — routing never reorders a session's events, and
/// sessions never share mutable state. Under QueuePolicy::kBlock (and no
/// tenant quota, or AdmissionPolicy::kBlock) the same pushed sequence
/// therefore yields bit-identical per-user estimates at ANY worker count.
/// Worker threads hold a numeric::SerialRegionGuard, so the per-step
/// candidate evaluation runs inline and the shared pool is left to
/// single-threaded callers; the service's parallelism axis is sessions.
///
/// Durability: quiesce() + checkpoint() snapshot every session as a
/// FLUXFPC1 image; a new manager re-registered with the same trackers and
/// restore()d from the image continues bit-identically (see
/// stream/supervisor.hpp for the crash-recovery loop built on top).
class TrackerManager {
 public:
  explicit TrackerManager(ManagerConfig config);
  /// Joins workers (as by finish()) if still running.
  ~TrackerManager();

  TrackerManager(const TrackerManager&) = delete;
  TrackerManager& operator=(const TrackerManager&) = delete;

  /// Registers a session before start(). Users are arbitrary ids; sessions
  /// are assigned to workers round-robin in registration order. Throws
  /// std::logic_error after start(), std::invalid_argument on a duplicate
  /// user.
  void add_session(std::uint32_t user, StreamTracker tracker,
                   SessionOptions options = {});

  /// Spins up the workers. Throws std::logic_error when already started or
  /// no session is registered.
  void start();

  /// Routes one event to its session's worker and reports the admission
  /// outcome. Under kBlock (queue or quota) this call provides the
  /// backpressure. Any thread may offer.
  PushStatus offer(const FluxEvent& event);

  /// Legacy boolean form: true iff offer() returned kAccepted.
  bool push(const FluxEvent& event) {
    return offer(event) == PushStatus::kAccepted;
  }

  /// Blocks until every event accepted so far has been folded by its
  /// worker (queues drained, workers idle). The caller must not offer()
  /// concurrently — one coordinating thread (the Supervisor pattern), or
  /// external synchronization. No-op before start() or after finish().
  void quiesce();

  /// Snapshot of every session in registration order. Quiesces first when
  /// the service is running, so the image is a consistent cut at an event
  /// boundary; callable before start() and after finish() as well. The
  /// same single-producer caveat as quiesce() applies.
  ManagerCheckpoint checkpoint();

  /// Restores a checkpoint into the registered sessions — only before
  /// start(). Each checkpointed session must match a registered session
  /// (same user, sniffer nodes, and user count), and every registered
  /// session must be covered; the worker count may differ (results stay
  /// bit-identical — the layout hint is ignored). Throws
  /// std::invalid_argument on any mismatch, std::logic_error after
  /// start().
  void restore(const ManagerCheckpoint& cp);

  /// Closes the ingest queues, wakes any producer blocked on a queue or a
  /// tenant quota, drains and joins every worker (each worker flushes its
  /// sessions' open windows), and freezes the stats. Safe to call once;
  /// offer() fails afterwards.
  void finish();

  bool started() const { return started_.load(std::memory_order_relaxed); }
  bool finished() const { return finished_.load(std::memory_order_relaxed); }
  std::size_t num_sessions() const { return sessions_.size(); }
  std::size_t workers() const { return config_.workers; }
  /// Registered user ids in registration (= checkpoint) order.
  std::vector<std::uint32_t> users() const;

  /// Epochs fired so far across all sessions (relaxed read — a live
  /// progress signal for supervision cadence, exact after quiesce()).
  std::uint64_t epochs_fired_live() const {
    return epochs_fired_live_.load(std::memory_order_relaxed);
  }
  /// Events folded so far (relaxed read — the supervisor's heartbeat).
  std::uint64_t processed_live() const {
    return processed_live_.load(std::memory_order_relaxed);
  }

  /// Per-epoch results of one session, in fired order. Valid after
  /// finish(), and after quiesce() while nothing is being offered. Throws
  /// std::invalid_argument on an unknown user.
  const std::vector<EpochResult>& results(std::uint32_t user) const;
  /// The session's tracker (final estimates, ingestion stats).
  const StreamTracker& session(std::uint32_t user) const;
  /// The session's admission attributes (tenant, priority). Throws
  /// std::invalid_argument on an unknown user.
  const SessionOptions& session_options(std::uint32_t user) const;

  /// Aggregated counters; meaningful after finish().
  ManagerStats stats() const;

 private:
  struct Session {
    std::uint32_t user = 0;
    StreamTracker tracker;
    SessionOptions options;
    std::vector<EpochResult> results;
  };

  void worker_loop(std::size_t worker);
  const Session& find_session(std::uint32_t user) const;
  /// Quota admission for one event; returns the status to propagate or
  /// kAccepted when the event may proceed to its queue. Only called when
  /// tenant_quota > 0.
  PushStatus admit(std::size_t session_index);

  ManagerConfig config_;
  std::vector<Session> sessions_;
  std::unordered_map<std::uint32_t, std::size_t> user_index_;
  std::vector<std::unique_ptr<EventQueue>> queues_;  ///< one per worker
  std::vector<std::thread> threads_;
  /// Lifecycle flags. Relaxed everywhere: the actual publication points
  /// are thread creation (start), the queue close/join handshake (finish),
  /// and the flow_mutex_ ledger — these flags only gate the fast-fail
  /// paths, where a stale read degrades to kClosed, never to a race.
  std::atomic<bool> started_{false};   // fluxfp-lint: allow(atomics-policy) -- fast-fail gate documented above; real publication is thread creation, not this flag
  std::atomic<bool> finished_{false};  // fluxfp-lint: allow(atomics-policy) -- fast-fail gate documented above; real publication is the close/join handshake
  std::chrono::steady_clock::time_point start_time_;
  ManagerStats final_stats_;
  std::atomic<std::uint64_t> unknown_user_{0};       // fluxfp-lint: allow(atomics-policy) -- monotonic stat bumped on the hot path; flow_mutex_ there would serialize workers
  std::atomic<std::uint64_t> epochs_fired_live_{0};  // fluxfp-lint: allow(atomics-policy) -- monotonic stat bumped on the hot path; flow_mutex_ there would serialize workers
  std::atomic<std::uint64_t> processed_live_{0};     // fluxfp-lint: allow(atomics-policy) -- monotonic stat bumped on the hot path; flow_mutex_ there would serialize workers

  /// Flow accounting: routed/processed totals for quiesce(), and — when a
  /// tenant quota is configured — per-tenant in-flight counts and
  /// per-session queued counts for admission. One mutex guards it all;
  /// the per-event cost is one uncontended lock, dwarfed by the SMC step.
  mutable support::Mutex flow_mutex_;
  std::condition_variable flow_cv_;
  std::uint64_t routed_flow_ FLUXFP_GUARDED_BY(flow_mutex_) = 0;
  std::uint64_t processed_flow_ FLUXFP_GUARDED_BY(flow_mutex_) = 0;
  std::uint64_t shed_ FLUXFP_GUARDED_BY(flow_mutex_) = 0;
  bool flow_closed_ FLUXFP_GUARDED_BY(flow_mutex_) = false;
  std::size_t flow_waiters_ FLUXFP_GUARDED_BY(flow_mutex_) = 0;
  std::unordered_map<std::uint32_t, std::uint64_t> tenant_in_flight_
      FLUXFP_GUARDED_BY(flow_mutex_);
  std::unordered_map<std::uint32_t, std::vector<std::size_t>>
      tenant_sessions_ FLUXFP_GUARDED_BY(flow_mutex_);
  /// Per-session queued counts, one slot per registered session.
  std::vector<std::uint64_t> queued_ FLUXFP_GUARDED_BY(flow_mutex_);
};

}  // namespace fluxfp::stream
