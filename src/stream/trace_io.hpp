#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "stream/event.hpp"

namespace fluxfp::stream {

class TrackerManager;

/// Binary event-trace format. Fixed 16-byte header
///   bytes 0..7   magic "FLUXFPT1"
///   bytes 8..11  u32 version (1 or 2)
///   bytes 12..15 version 1: u32 reserved (0)
///                version 2: u8 observation-model id (core::ModelId),
///                           3 reserved zero bytes
/// followed by one 28-byte record per event:
///   f64 time, u32 user, u32 epoch, u32 node, f64 reading
/// Values are raw host-endian bytes (memcpy) — readings round-trip
/// BIT-exactly, including the NaN payload of net::kMissingReading, so a
/// recorded run replays into bit-identical estimates. The event count is
/// implied by the stream length; a recorder can therefore stream records
/// without seeking back.
///
/// Versioning is backward-compatible both ways: a flux trace (model 0) is
/// always written as version 1, byte-identical to pre-model-tag traces,
/// so old readers keep reading new flux captures; version 2 exists solely
/// to carry a non-flux model id, and readers accept both versions (a v1
/// trace reads back as model 0).
inline constexpr char kTraceMagic[8] = {'F', 'L', 'U', 'X',
                                        'F', 'P', 'T', '1'};
inline constexpr std::uint32_t kTraceVersion = 1;
/// Header revision carrying the observation-model id byte.
inline constexpr std::uint32_t kTraceVersionModel = 2;
inline constexpr std::size_t kTraceHeaderBytes = 16;
inline constexpr std::size_t kTraceRecordBytes = 28;

/// The FLUXFPT1 record codec, exposed so other framings can reuse it:
/// netio's EVENT_BATCH frames carry exactly these 28-byte records, which is
/// what makes a recorded trace and a wire capture interchangeable. `dst`
/// and `src` must point at kTraceRecordBytes of storage.
void encode_trace_record(char* dst, const FluxEvent& event);
void decode_trace_record(const char* src, FluxEvent& out);

/// Streams events into a binary trace. The header is written on
/// construction; every write() appends one record. The recorder never
/// seeks, so any ostream works (files, pipes, stringstreams).
class TraceRecorder {
 public:
  /// Writes the header. `model_id` tags which observation model the
  /// readings belong to (core::ModelId values): 0 (flux) writes a
  /// version-1 header byte-identical to pre-model-tag recorders; any
  /// other id writes version 2. Throws std::runtime_error on a bad
  /// stream, std::invalid_argument on an unknown model id.
  explicit TraceRecorder(std::ostream& os, std::uint8_t model_id = 0);

  /// Appends one event (or a batch, in order).
  void write(const FluxEvent& event);
  void write(std::span<const FluxEvent> events);

  std::uint64_t written() const { return written_; }
  std::uint8_t model_id() const { return model_id_; }

 private:
  std::ostream* os_;
  std::uint64_t written_ = 0;
  std::uint8_t model_id_ = 0;
};

/// Typed malformation report of a trace stream: what went wrong, at which
/// byte offset of the trace, and why — precise enough to locate the bad
/// record in a multi-gigabyte capture.
struct TraceError {
  enum class Kind {
    kTruncatedHeader,  ///< fewer than 16 header bytes
    kBadMagic,         ///< not a FLUXFPT1 trace
    kBadVersion,       ///< version this build does not speak
    kTruncatedRecord,  ///< a record cut short mid-field
    kBadStream,        ///< the stream itself failed (open/read error)
  };
  Kind kind = Kind::kBadStream;
  std::uint64_t offset = 0;  ///< byte offset where the failure was detected
  std::string reason;

  /// "offset 16: truncated record ..." — for logs and error messages.
  std::string to_string() const;
};

/// The throwing face of a TraceError. Derives std::runtime_error so
/// callers that only care that the trace is bad keep working; callers
/// that want the offset catch this and read error().
class TraceFormatError : public std::runtime_error {
 public:
  explicit TraceFormatError(TraceError err);
  const TraceError& error() const { return err_; }

 private:
  TraceError err_;
};

/// Reads a binary trace back, either one event at a time or whole.
/// Malformations are reported as TraceError — thrown (as TraceFormatError)
/// by the constructor / next() / read_all(), or returned without throwing
/// by try_next() for callers that must keep running past a corrupt tail.
class TraceReplayer {
 public:
  /// Parses the header. Throws TraceFormatError on a short header, bad
  /// magic, or unsupported version.
  explicit TraceReplayer(std::istream& is);

  /// Reads the next record into `out`; false at a clean end of stream.
  /// Throws TraceFormatError on a truncated record.
  bool next(FluxEvent& out);

  /// Non-throwing form of next(): true when `out` was filled; false at
  /// end of input — a clean end when error() is empty, a malformed tail
  /// otherwise (and every later call keeps returning false).
  bool try_next(FluxEvent& out);

  /// The malformation that ended the stream, if any.
  const std::optional<TraceError>& error() const { return error_; }

  /// Remaining records, in order.
  std::vector<FluxEvent> read_all();

  std::uint64_t read_count() const { return read_; }
  /// Bytes of the trace consumed so far (header + whole records).
  std::uint64_t offset() const { return offset_; }
  /// Observation-model tag of the trace (core::ModelId values); 0 (flux)
  /// for version-1 traces, the header byte for version 2.
  std::uint8_t model_id() const { return model_id_; }

 private:
  std::istream* is_;
  std::uint64_t read_ = 0;
  std::uint64_t offset_ = 0;
  std::uint8_t model_id_ = 0;
  std::optional<TraceError> error_;
};

/// Convenience: records `events` to / reads a whole trace from a file.
/// Throws std::runtime_error when the file cannot be opened.
void write_trace_file(const std::string& path,
                      std::span<const FluxEvent> events);
std::vector<FluxEvent> read_trace_file(const std::string& path);

/// Absolute-deadline replay pacing. Every event's delivery deadline is
/// computed against ONE fixed pair of origins — the stream epoch clock
/// (`epoch_time`, usually the trace's first event timestamp) on the virtual
/// axis and the wall instant of the first pace() call on the real axis:
///
///   due(t) = wall_origin + (t - epoch_time) / speed
///
/// so scheduling error can never accumulate: an oversleep on one event
/// leaves every later deadline where it was, and the replay self-corrects
/// by releasing overdue events without sleeping. Deadlines closer than a
/// small slack are released immediately rather than slept for — at high Nx
/// speedups inter-event gaps shrink below the scheduler's sleep
/// granularity, and paying a syscall (plus its oversleep) per event would
/// quietly throttle the offered rate below the advertised one. The honest
/// residual is reported instead: max_behind_seconds() is the worst lag
/// between an event's deadline and its actual release.
///
/// Several pacers (one per loadgen connection) given the same `epoch_time`
/// stay mutually aligned: each connection's slice replays on the shared
/// trace clock, not on its own first event.
class ReplayPacer {
 public:
  /// speed <= 0 disables pacing entirely (max-speed mode: pace() never
  /// sleeps, never reads the clock).
  ReplayPacer(double speed, double epoch_time);

  /// Blocks until `event_time` is due. Sleeps in short chunks and polls
  /// `stop` (when provided) about every 50 ms; returns false when stopped
  /// before the deadline, true when the event is due for delivery.
  bool pace(double event_time);
  bool pace(double event_time, const std::function<bool()>& stop);

  /// Worst observed lag (seconds) between a deadline and its release; 0.0
  /// while the replay has kept up (or in max-speed mode).
  double max_behind_seconds() const { return max_behind_; }

 private:
  double speed_;
  double epoch_time_;
  bool have_origin_ = false;
  std::chrono::steady_clock::time_point wall_origin_;
  double max_behind_ = 0.0;
};

/// Replays a trace into a running TrackerManager, pacing deliveries by the
/// events' timestamps scaled by 1/`speed`:
///   speed <= 0  — as fast as the manager accepts (benchmarking mode);
///   speed == 1  — real-time (1 trace-time unit per wall second);
///   speed == 8  — 8x faster than real time.
/// Deliveries are scheduled by a ReplayPacer against absolute deadlines
/// from the stream epoch clock (the first event's timestamp), so the
/// offered rate stays honest at any speedup. Pacing affects wall-clock
/// only — under QueuePolicy::kBlock the folding and estimates are
/// bit-identical at every speed, which is what makes recorded runs a
/// regression currency. Returns the number of events pushed (events for
/// unknown users are skipped and not counted).
std::uint64_t replay_trace(TraceReplayer& replayer, TrackerManager& manager,
                           double speed = 0.0);

/// File-path convenience for replay_trace.
std::uint64_t replay_trace_file(const std::string& path,
                                TrackerManager& manager, double speed = 0.0);

}  // namespace fluxfp::stream
