#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "stream/event.hpp"

namespace fluxfp::stream {

class TrackerManager;

/// Binary event-trace format, version 1. Fixed 16-byte header
///   bytes 0..7   magic "FLUXFPT1"
///   bytes 8..11  u32 version (1)
///   bytes 12..15 u32 reserved (0)
/// followed by one 28-byte record per event:
///   f64 time, u32 user, u32 epoch, u32 node, f64 reading
/// Values are raw host-endian bytes (memcpy) — readings round-trip
/// BIT-exactly, including the NaN payload of net::kMissingReading, so a
/// recorded run replays into bit-identical estimates. The event count is
/// implied by the stream length; a recorder can therefore stream records
/// without seeking back.
inline constexpr char kTraceMagic[8] = {'F', 'L', 'U', 'X',
                                        'F', 'P', 'T', '1'};
inline constexpr std::uint32_t kTraceVersion = 1;
inline constexpr std::size_t kTraceHeaderBytes = 16;
inline constexpr std::size_t kTraceRecordBytes = 28;

/// Streams events into a binary trace. The header is written on
/// construction; every write() appends one record. The recorder never
/// seeks, so any ostream works (files, pipes, stringstreams).
class TraceRecorder {
 public:
  /// Writes the header. Throws std::runtime_error on a bad stream.
  explicit TraceRecorder(std::ostream& os);

  /// Appends one event (or a batch, in order).
  void write(const FluxEvent& event);
  void write(std::span<const FluxEvent> events);

  std::uint64_t written() const { return written_; }

 private:
  std::ostream* os_;
  std::uint64_t written_ = 0;
};

/// Reads a binary trace back, either one event at a time (next()) or
/// whole (read_all()). Throws std::runtime_error on a bad magic/version
/// or a truncated record.
class TraceReplayer {
 public:
  explicit TraceReplayer(std::istream& is);

  /// Reads the next record into `out`; false at a clean end of stream.
  bool next(FluxEvent& out);

  /// Remaining records, in order.
  std::vector<FluxEvent> read_all();

  std::uint64_t read_count() const { return read_; }

 private:
  std::istream* is_;
  std::uint64_t read_ = 0;
};

/// Convenience: records `events` to / reads a whole trace from a file.
/// Throws std::runtime_error when the file cannot be opened.
void write_trace_file(const std::string& path,
                      std::span<const FluxEvent> events);
std::vector<FluxEvent> read_trace_file(const std::string& path);

/// Replays a trace into a running TrackerManager, pacing deliveries by the
/// events' timestamps scaled by 1/`speed`:
///   speed <= 0  — as fast as the manager accepts (benchmarking mode);
///   speed == 1  — real-time (1 trace-time unit per wall second);
///   speed == 8  — 8x faster than real time.
/// Pacing affects wall-clock only — under QueuePolicy::kBlock the folding
/// and estimates are bit-identical at every speed, which is what makes
/// recorded runs a regression currency. Returns the number of events
/// pushed (events for unknown users are skipped and not counted).
std::uint64_t replay_trace(TraceReplayer& replayer, TrackerManager& manager,
                           double speed = 0.0);

/// File-path convenience for replay_trace.
std::uint64_t replay_trace_file(const std::string& path,
                                TrackerManager& manager, double speed = 0.0);

}  // namespace fluxfp::stream
