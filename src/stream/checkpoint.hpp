#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "stream/stream_tracker.hpp"

namespace fluxfp::stream {

/// FLUXFPC1 — versioned binary snapshot of a tracking service: every
/// session's complete mutable state (SMC particles and weights, RNG stream
/// position, open epoch windows, virtual-time cursors, ingestion counters)
/// plus the shard layout hint. A service rebuilt from a checkpoint folds
/// every subsequent event bit-identically to one that never stopped.
///
/// Fixed 24-byte header:
///   bytes 0..7   magic "FLUXFPC1"
///   bytes 8..11  u32 version (1)
///   bytes 12..15 u32 CRC-32 (IEEE 802.3, reflected) of the payload bytes
///   bytes 16..23 u64 payload byte count
/// The payload is raw host-endian bytes (memcpy, like FLUXFPT1), so f64
/// fields — readings, weights, timestamps — round-trip BIT-exactly,
/// including the NaN payload of net::kMissingReading. The CRC guards
/// against torn writes and bit rot: a checkpoint either decodes whole or
/// is rejected with a typed error, never half-applied.
inline constexpr char kCheckpointMagic[8] = {'F', 'L', 'U', 'X',
                                             'F', 'P', 'C', '1'};
inline constexpr std::uint32_t kCheckpointVersion = 1;
inline constexpr std::size_t kCheckpointHeaderBytes = 24;

/// One session's snapshot. `sniffer_nodes` and `num_users` echo the
/// construction inputs so restore can reject a checkpoint taken against a
/// different deployment instead of silently poisoning the filter.
struct SessionCheckpoint {
  std::uint32_t user = 0;
  std::uint32_t num_users = 1;
  std::vector<std::uint64_t> sniffer_nodes;
  StreamTrackerState state;
};

/// A whole service snapshot, sessions in registration order. `workers` is
/// a layout hint only — restoring under a different worker count is legal
/// and bit-identical (sessions own their RNG and event order).
struct ManagerCheckpoint {
  std::uint32_t workers = 1;
  std::vector<SessionCheckpoint> sessions;
};

/// Typed decode failure: what went wrong, at which byte offset of the
/// checkpoint image, and why. Returned (not thrown) so supervision code
/// can fall back to an older snapshot without exception plumbing.
struct CheckpointError {
  enum class Kind {
    kTruncatedHeader,   ///< fewer than 24 header bytes
    kBadMagic,          ///< not a FLUXFPC1 image
    kBadVersion,        ///< version this build does not speak
    kTruncatedPayload,  ///< payload shorter than the header promised
    kCrcMismatch,       ///< payload bytes fail the header CRC
    kMalformedPayload,  ///< CRC passed but the structure is inconsistent
    kBadStream,         ///< the stream itself failed (open/read error)
  };
  Kind kind = Kind::kBadStream;
  std::uint64_t offset = 0;  ///< byte offset where the failure was detected
  std::string reason;

  /// "offset 12: payload CRC mismatch ..." — for logs and error messages.
  std::string to_string() const;
};

/// Serializes a snapshot into one in-memory FLUXFPC1 image (header +
/// payload). This is the supervision hot path — one buffer build, no
/// stream round-trip.
std::string encode_checkpoint(const ManagerCheckpoint& cp);

/// Serializes a snapshot. Returns the total bytes written (header +
/// payload). Throws std::runtime_error when the stream rejects a write —
/// an I/O failure, not a format condition, so it stays an exception.
std::uint64_t write_checkpoint(std::ostream& os, const ManagerCheckpoint& cp);

/// Decodes a snapshot. On success returns std::nullopt and fills `out`;
/// on any malformation — truncation, corruption, garbage — returns the
/// typed error and leaves `out` unspecified. Never throws on bad input and
/// never reads uninitialized bytes: every field is bounds-checked against
/// the bytes actually obtained.
std::optional<CheckpointError> read_checkpoint(std::istream& is,
                                               ManagerCheckpoint& out);

/// File conveniences. An unopenable file reports Kind::kBadStream; the
/// writer throws std::runtime_error like write_checkpoint.
std::uint64_t write_checkpoint_file(const std::string& path,
                                    const ManagerCheckpoint& cp);
std::optional<CheckpointError> read_checkpoint_file(const std::string& path,
                                                    ManagerCheckpoint& out);

}  // namespace fluxfp::stream
