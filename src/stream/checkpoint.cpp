#include "stream/checkpoint.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace fluxfp::stream {

namespace {

// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) — the same
// polynomial zlib uses, table-driven.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::uint32_t crc32(const std::string& data) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data) {
    c = crc_table()[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

/// Appends raw host-endian fields to a byte buffer (the FLUXFPT1 idiom:
/// memcpy keeps f64 round-trips bit-exact, NaN payloads included).
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void f64(double v) { raw(&v, 8); }
  void str(const std::string& s) {
    u64(s.size());
    buf_.append(s);
  }
  std::string take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Bounds-checked cursor over the payload. Every read checks the remaining
/// byte count first, so a lying length prefix can neither overrun the
/// buffer nor trigger an absurd allocation: element counts are validated
/// against a per-element minimum size before any container is resized.
class ByteReader {
 public:
  explicit ByteReader(const std::string& buf) : buf_(&buf) {}

  bool u8(std::uint8_t& v) {
    if (remaining() < 1) {
      return fail("u8 past end of payload");
    }
    v = static_cast<std::uint8_t>((*buf_)[pos_++]);
    return true;
  }
  bool u32(std::uint32_t& v) { return raw(&v, 4, "u32"); }
  bool u64(std::uint64_t& v) { return raw(&v, 8, "u64"); }
  bool f64(double& v) { return raw(&v, 8, "f64"); }

  bool str(std::string& s) {
    std::uint64_t n = 0;
    if (!u64(n)) {
      return false;
    }
    if (n > remaining()) {
      return fail("string length exceeds remaining payload");
    }
    s.assign(*buf_, pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return true;
  }

  /// Reads an element count and rejects it when even `min_bytes_each`
  /// bytes per element could not fit in what is left.
  bool count(std::uint64_t& n, std::uint64_t min_bytes_each) {
    if (!u64(n)) {
      return false;
    }
    if (min_bytes_each != 0 && n > remaining() / min_bytes_each) {
      return fail("element count exceeds remaining payload");
    }
    return true;
  }

  std::uint64_t remaining() const { return buf_->size() - pos_; }
  std::uint64_t pos() const { return pos_; }
  bool ok() const { return ok_; }
  const std::string& what() const { return what_; }

  bool fail(const char* why) {
    if (ok_) {  // keep the first failure's position and reason
      ok_ = false;
      what_ = why;
      fail_pos_ = pos_;
    }
    return false;
  }
  std::uint64_t fail_pos() const { return fail_pos_; }

 private:
  bool raw(void* p, std::size_t n, const char* what) {
    if (remaining() < n) {
      return fail(what);
    }
    std::memcpy(p, buf_->data() + pos_, n);
    pos_ += n;
    return true;
  }

  const std::string* buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string what_;
  std::uint64_t fail_pos_ = 0;
};

void encode_session(ByteWriter& w, const SessionCheckpoint& s) {
  w.u32(s.user);
  w.u32(s.num_users);
  w.u64(s.sniffer_nodes.size());
  for (const std::uint64_t node : s.sniffer_nodes) {
    w.u64(node);
  }
  const StreamTrackerState& st = s.state;
  w.str(st.rng);
  w.u64(st.smc.users.size());
  for (const core::SmcUserState& us : st.smc.users) {
    w.u64(us.particles.size());
    for (const core::Particle& p : us.particles) {
      w.f64(p.position.x);
      w.f64(p.position.y);
      w.f64(p.weight);
    }
    w.f64(us.t_last);
    w.f64(us.prev_estimate.x);
    w.f64(us.prev_estimate.y);
    w.f64(us.heading.x);
    w.f64(us.heading.y);
  }
  w.u32(static_cast<std::uint32_t>(st.smc.bad_rounds));
  w.u64(st.open.size());
  for (const WindowState& ws : st.open) {
    w.u32(ws.epoch);
    w.f64(ws.newest_time);
    w.u64(ws.seen_count);
    w.u64(ws.readings.size());
    for (const double r : ws.readings) {
      w.f64(r);
    }
    for (std::size_t i = 0; i < ws.seen.size(); ++i) {
      w.u8(ws.seen[i] ? 1 : 0);
    }
  }
  w.f64(st.now);
  w.f64(st.last_step_time);
  w.u8(st.fired_any ? 1 : 0);
  w.u32(st.last_fired_epoch);
  const StreamStats& ss = st.stats;
  w.u64(ss.events);
  w.u64(ss.duplicates);
  w.u64(ss.late);
  w.u64(ss.out_of_order);
  w.u64(ss.unknown_node);
  w.u64(ss.epochs_fired);
  w.u64(ss.forced_closes);
  w.u64(ss.filter_micros.size());
  for (const double m : ss.filter_micros) {
    w.f64(m);
  }
}

bool decode_session(ByteReader& r, SessionCheckpoint& s) {
  if (!r.u32(s.user) || !r.u32(s.num_users)) {
    return false;
  }
  std::uint64_t n = 0;
  if (!r.count(n, 8)) {
    return false;
  }
  s.sniffer_nodes.resize(static_cast<std::size_t>(n));
  for (std::uint64_t& node : s.sniffer_nodes) {
    if (!r.u64(node)) {
      return false;
    }
  }
  StreamTrackerState& st = s.state;
  if (!r.str(st.rng)) {
    return false;
  }
  if (!r.count(n, 8)) {
    return false;
  }
  st.smc.users.resize(static_cast<std::size_t>(n));
  for (core::SmcUserState& us : st.smc.users) {
    std::uint64_t particles = 0;
    if (!r.count(particles, 24)) {
      return false;
    }
    us.particles.resize(static_cast<std::size_t>(particles));
    for (core::Particle& p : us.particles) {
      if (!r.f64(p.position.x) || !r.f64(p.position.y) ||
          !r.f64(p.weight)) {
        return false;
      }
    }
    if (!r.f64(us.t_last) || !r.f64(us.prev_estimate.x) ||
        !r.f64(us.prev_estimate.y) || !r.f64(us.heading.x) ||
        !r.f64(us.heading.y)) {
      return false;
    }
  }
  std::uint32_t bad_rounds = 0;
  if (!r.u32(bad_rounds)) {
    return false;
  }
  if (bad_rounds > static_cast<std::uint32_t>(
                       std::numeric_limits<int>::max())) {
    return r.fail("bad_rounds out of range");
  }
  st.smc.bad_rounds = static_cast<int>(bad_rounds);
  if (!r.count(n, 28)) {
    return false;
  }
  st.open.resize(static_cast<std::size_t>(n));
  for (WindowState& ws : st.open) {
    std::uint64_t slots = 0;
    if (!r.u32(ws.epoch) || !r.f64(ws.newest_time) ||
        !r.u64(ws.seen_count) || !r.count(slots, 9)) {
      return false;
    }
    ws.readings.resize(static_cast<std::size_t>(slots));
    for (double& reading : ws.readings) {
      if (!r.f64(reading)) {
        return false;
      }
    }
    ws.seen.assign(static_cast<std::size_t>(slots), false);
    for (std::size_t i = 0; i < ws.seen.size(); ++i) {
      std::uint8_t bit = 0;
      if (!r.u8(bit)) {
        return false;
      }
      if (bit > 1) {
        return r.fail("seen flag is neither 0 nor 1");
      }
      ws.seen[i] = bit != 0;
    }
  }
  std::uint8_t fired = 0;
  if (!r.f64(st.now) || !r.f64(st.last_step_time) || !r.u8(fired) ||
      !r.u32(st.last_fired_epoch)) {
    return false;
  }
  if (fired > 1) {
    return r.fail("fired_any flag is neither 0 nor 1");
  }
  st.fired_any = fired != 0;
  StreamStats& ss = st.stats;
  if (!r.u64(ss.events) || !r.u64(ss.duplicates) || !r.u64(ss.late) ||
      !r.u64(ss.out_of_order) || !r.u64(ss.unknown_node) ||
      !r.u64(ss.epochs_fired) || !r.u64(ss.forced_closes)) {
    return false;
  }
  if (!r.count(n, 8)) {
    return false;
  }
  ss.filter_micros.resize(static_cast<std::size_t>(n));
  for (double& m : ss.filter_micros) {
    if (!r.f64(m)) {
      return false;
    }
  }
  return true;
}

void pack_u32(char* dst, std::uint32_t v) { std::memcpy(dst, &v, 4); }
void pack_u64(char* dst, std::uint64_t v) { std::memcpy(dst, &v, 8); }
std::uint32_t unpack_u32(const char* src) {
  std::uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
std::uint64_t unpack_u64(const char* src) {
  std::uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

CheckpointError make_error(CheckpointError::Kind kind, std::uint64_t offset,
                           std::string reason) {
  CheckpointError e;
  e.kind = kind;
  e.offset = offset;
  e.reason = std::move(reason);
  return e;
}

}  // namespace

std::string CheckpointError::to_string() const {
  return "offset " + std::to_string(offset) + ": " + reason;
}

std::string encode_checkpoint(const ManagerCheckpoint& cp) {
  ByteWriter w;
  w.u32(cp.workers);
  w.u64(cp.sessions.size());
  for (const SessionCheckpoint& s : cp.sessions) {
    encode_session(w, s);
  }
  std::string image = w.take();

  char header[kCheckpointHeaderBytes];
  std::memcpy(header, kCheckpointMagic, sizeof(kCheckpointMagic));
  pack_u32(header + 8, kCheckpointVersion);
  pack_u32(header + 12, crc32(image));
  pack_u64(header + 16, image.size());
  image.insert(0, header, sizeof(header));
  return image;
}

std::uint64_t write_checkpoint(std::ostream& os,
                               const ManagerCheckpoint& cp) {
  const std::string image = encode_checkpoint(cp);
  os.write(image.data(), static_cast<std::streamsize>(image.size()));
  if (!os) {
    throw std::runtime_error("write_checkpoint: stream write failed");
  }
  return image.size();
}

std::optional<CheckpointError> read_checkpoint(std::istream& is,
                                               ManagerCheckpoint& out) {
  char header[kCheckpointHeaderBytes];
  is.read(header, sizeof(header));
  const auto got = static_cast<std::uint64_t>(is.gcount());
  if (got != sizeof(header)) {
    return make_error(CheckpointError::Kind::kTruncatedHeader, got,
                      "checkpoint header truncated (" + std::to_string(got) +
                          " of " + std::to_string(kCheckpointHeaderBytes) +
                          " bytes)");
  }
  if (std::memcmp(header, kCheckpointMagic, sizeof(kCheckpointMagic)) != 0) {
    return make_error(CheckpointError::Kind::kBadMagic, 0,
                      "not a FLUXFPC1 checkpoint (bad magic)");
  }
  const std::uint32_t version = unpack_u32(header + 8);
  if (version != kCheckpointVersion) {
    return make_error(CheckpointError::Kind::kBadVersion, 8,
                      "unsupported checkpoint version " +
                          std::to_string(version));
  }
  const std::uint32_t want_crc = unpack_u32(header + 12);
  const std::uint64_t payload_bytes = unpack_u64(header + 16);

  // Read the payload in bounded chunks: a corrupt length field must not
  // translate into a giant up-front allocation.
  std::string payload;
  char chunk[1 << 16];
  while (payload.size() < payload_bytes) {
    const std::uint64_t want =
        std::min<std::uint64_t>(sizeof(chunk),
                                payload_bytes - payload.size());
    is.read(chunk, static_cast<std::streamsize>(want));
    const auto n = static_cast<std::uint64_t>(is.gcount());
    payload.append(chunk, static_cast<std::size_t>(n));
    if (n < want) {
      return make_error(
          CheckpointError::Kind::kTruncatedPayload,
          kCheckpointHeaderBytes + payload.size(),
          "payload truncated (" + std::to_string(payload.size()) + " of " +
              std::to_string(payload_bytes) + " bytes)");
    }
  }
  if (crc32(payload) != want_crc) {
    return make_error(CheckpointError::Kind::kCrcMismatch, 12,
                      "payload CRC mismatch — torn write or corruption");
  }

  ManagerCheckpoint cp;
  ByteReader r(payload);
  std::uint64_t sessions = 0;
  bool decoded = r.u32(cp.workers) && r.count(sessions, 16);
  if (decoded) {
    cp.sessions.resize(static_cast<std::size_t>(sessions));
    for (SessionCheckpoint& s : cp.sessions) {
      if (!decode_session(r, s)) {
        decoded = false;
        break;
      }
    }
  }
  if (decoded && r.remaining() != 0) {
    r.fail("trailing bytes after the last session");
    decoded = false;
  }
  if (!decoded) {
    return make_error(
        CheckpointError::Kind::kMalformedPayload,
        kCheckpointHeaderBytes + (r.ok() ? r.pos() : r.fail_pos()),
        "malformed payload: " + (r.ok() ? std::string("decode failed")
                                        : r.what()));
  }
  out = std::move(cp);
  return std::nullopt;
}

std::uint64_t write_checkpoint_file(const std::string& path,
                                    const ManagerCheckpoint& cp) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    throw std::runtime_error("write_checkpoint_file: cannot open " + path);
  }
  return write_checkpoint(os, cp);
}

std::optional<CheckpointError> read_checkpoint_file(const std::string& path,
                                                    ManagerCheckpoint& out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return make_error(CheckpointError::Kind::kBadStream, 0,
                      "cannot open " + path);
  }
  return read_checkpoint(is, out);
}

}  // namespace fluxfp::stream
