#include "stream/supervisor.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/instrument.hpp"

#if defined(FLUXFP_OBS_ENABLED)
#include "obs/obs.hpp"
#endif

namespace fluxfp::stream {

Supervisor::Supervisor(ManagerFactory factory, SupervisorConfig config)
    : factory_(std::move(factory)), config_(std::move(config)) {
  if (!factory_) {
    throw std::invalid_argument("Supervisor: null manager factory");
  }
  if (config_.backoff_base < 0.0 || config_.backoff_factor < 1.0) {
    throw std::invalid_argument(
        "Supervisor: backoff_base must be >= 0 and backoff_factor >= 1");
  }
}

void Supervisor::start() {
  if (started_) {
    throw std::logic_error("Supervisor: already started");
  }
  manager_ = factory_();
  if (!manager_) {
    throw std::invalid_argument("Supervisor: factory returned null");
  }
  if (manager_->started()) {
    throw std::invalid_argument(
        "Supervisor: factory must return a not-yet-started manager");
  }
  users_ = manager_->users();
  for (const std::uint32_t u : users_) {
    committed_[u];
    manager_committed_[u] = 0;
  }
  started_ = true;
  manager_->start();
  // Epoch-zero baseline: a crash before the first supervision boundary
  // must have an image to restore.
  commit_checkpoint(0);
}

PushStatus Supervisor::offer(const FluxEvent& event) {
  if (!started_ || finished_ || failed_) {
    return PushStatus::kClosed;
  }
  if (event.time > vnow_) {
    vnow_ = event.time;
  }
  if (!manager_) {
    if (vnow_ < restart_at_) {
      // Down for backoff: defer. The journal is the durable record, so
      // the event is admitted, not lost — it replays at restart. Only the
      // session set is checkable while the shard is down.
      if (committed_.find(event.user) == committed_.end()) {
        return PushStatus::kUnknownUser;
      }
      journal_.push_back(event);
      ++stats_.events_deferred;
      return PushStatus::kAccepted;
    }
    if (!try_restart()) {
      return PushStatus::kClosed;
    }
  }
  const PushStatus status = manager_->offer(event);
  if (status != PushStatus::kAccepted) {
    return status;
  }
  journal_.push_back(event);
  ++routed_since_manager_;
  // Heartbeat over virtual time: with work pending, the fold counter must
  // advance before the deadline lapses. Relaxed reads — a heuristic
  // detector, made exact only at quiesced boundaries.
  const std::uint64_t processed = manager_->processed_live();
  if (processed != last_processed_seen_) {
    last_processed_seen_ = processed;
    last_progress_vtime_ = vnow_;
  } else if (config_.heartbeat_deadline > 0.0 &&
             routed_since_manager_ > processed &&
             vnow_ - last_progress_vtime_ > config_.heartbeat_deadline) {
    ++stats_.stalls_detected;
    FLUXFP_OBS_COUNTER_INC_SCHED(
        "fluxfp_supervisor_stalls_total",
        "Shards declared stalled (heartbeat lapse or failed health probe)");
    crash_shard();
    return PushStatus::kAccepted;  // journaled; replays at restart
  }
  bool boundary = false;
  if (config_.checkpoint_every_events > 0 &&
      ++accepted_since_check_ >= config_.checkpoint_every_events) {
    accepted_since_check_ = 0;
    boundary = true;
  } else if (config_.checkpoint_every_epochs > 0 &&
             manager_->epochs_fired_live() - epochs_live_at_checkpoint_ >=
                 config_.checkpoint_every_epochs) {
    // Epoch cadence: triggered off the relaxed live counter, made exact by
    // the quiesce inside supervise().
    boundary = true;
  }
  if (boundary) {
    supervise();
  }
  return PushStatus::kAccepted;
}

void Supervisor::supervise() {
  manager_->quiesce();
  const std::uint64_t epochs = exact_epochs();
#if defined(FLUXFP_OBS_ENABLED)
  if (obs::enabled()) {
    obs::MetricsRegistry::global()
        .gauge("fluxfp_supervisor_checkpoint_age_epochs",
               "Epochs fired since the last committed checkpoint",
               obs::Determinism::kScheduling)
        .set(static_cast<double>(epochs - epochs_at_checkpoint_));
  }
#endif
  if (config_.fault.should_crash(epochs, stats_.crashes_injected)) {
    ++stats_.crashes_injected;
    FLUXFP_OBS_COUNTER_INC_SCHED("fluxfp_supervisor_crashes_injected_total",
                                 "Shard kills injected by the fault plan");
    crash_shard();
    return;
  }
  if (config_.health_probe && !config_.health_probe(*manager_)) {
    ++stats_.stalls_detected;
    FLUXFP_OBS_COUNTER_INC_SCHED(
        "fluxfp_supervisor_stalls_total",
        "Shards declared stalled (heartbeat lapse or failed health probe)");
    crash_shard();
    return;
  }
  commit_checkpoint(epochs);
}

void Supervisor::commit_checkpoint(std::uint64_t epochs) {
  ManagerCheckpoint cp = manager_->checkpoint();
  commit_results();
  image_ = encode_checkpoint(cp);
  if (!config_.checkpoint_path.empty()) {
    write_image_file();
  }
  // Everything up to the cut is durable now: the journal restarts empty
  // and the incident window closes.
  journal_.clear();
  consecutive_failures_ = 0;
  epochs_at_checkpoint_ = epochs;
  epochs_live_at_checkpoint_ = manager_->epochs_fired_live();
  stats_.checkpoint_bytes = image_.size();
  ++stats_.checkpoints;
  FLUXFP_OBS_COUNTER_INC_SCHED("fluxfp_supervisor_checkpoints_total",
                               "Checkpoints committed");
#if defined(FLUXFP_OBS_ENABLED)
  if (obs::enabled()) {
    obs::MetricsRegistry::global()
        .gauge("fluxfp_supervisor_checkpoint_bytes",
               "Size of the newest committed checkpoint image",
               obs::Determinism::kScheduling)
        .set(static_cast<double>(image_.size()));
  }
#endif
}

void Supervisor::write_image_file() const {
  std::ofstream os(config_.checkpoint_path,
                   std::ios::binary | std::ios::trunc);
  os.write(image_.data(), static_cast<std::streamsize>(image_.size()));
  if (!os) {
    throw std::runtime_error("Supervisor: cannot write checkpoint file " +
                             config_.checkpoint_path);
  }
}

void Supervisor::commit_results() {
  for (const std::uint32_t u : users_) {
    const std::vector<EpochResult>& live = manager_->results(u);
    std::size_t& done = manager_committed_.at(u);
    std::vector<EpochResult>& out = committed_.at(u);
    for (std::size_t i = done; i < live.size(); ++i) {
      out.push_back(live[i]);
    }
    done = live.size();
  }
}

void Supervisor::crash_shard() {
  // The incarnation dies taking all uncommitted state with it; committed_
  // results and the journal are the durable record. (Destruction joins
  // the workers — simulating the kill, not surviving it.)
  manager_.reset();
  ++consecutive_failures_;
  if (consecutive_failures_ > config_.max_restarts) {
    give_up();
    return;
  }
  const double backoff =
      config_.backoff_base *
      std::pow(config_.backoff_factor,
               static_cast<double>(consecutive_failures_ - 1));
  restart_at_ = vnow_ + backoff;
}

void Supervisor::give_up() {
  failed_ = true;
  stats_.sessions_shed += users_.size();
  FLUXFP_OBS_COUNTER_ADD_SCHED(
      "fluxfp_supervisor_sessions_shed_total",
      "Sessions lost because the supervisor exhausted its restart budget",
      users_.size());
}

bool Supervisor::try_restart() {
  ManagerCheckpoint cp;
  std::istringstream is(image_);
  if (read_checkpoint(is, cp)) {
    // The in-memory image cannot decode — nothing sound to restart from.
    give_up();
    return false;
  }
  std::unique_ptr<TrackerManager> fresh = factory_();
  if (!fresh || fresh->started() || fresh->users() != users_) {
    throw std::logic_error(
        "Supervisor: factory must rebuild the same not-started session set");
  }
  fresh->restore(cp);
  fresh->start();
  manager_ = std::move(fresh);
  for (const std::uint32_t u : users_) {
    manager_committed_.at(u) = 0;
  }
  routed_since_manager_ = 0;
  last_processed_seen_ = 0;
  last_progress_vtime_ = vnow_;
  epochs_live_at_checkpoint_ = 0;  // the live counter restarted with the shard
  for (const FluxEvent& e : journal_) {
    if (manager_->offer(e) == PushStatus::kAccepted) {
      ++routed_since_manager_;
    }
    ++stats_.replayed_events;
  }
  ++stats_.restarts;
  FLUXFP_OBS_COUNTER_INC_SCHED(
      "fluxfp_supervisor_restarts_total",
      "Shard restarts from the last good checkpoint (restore + replay)");
  return true;
}

bool Supervisor::quiesce() {
  if (!started_ || finished_ || failed_ || !manager_) {
    return false;
  }
  manager_->quiesce();
  return true;
}

void Supervisor::finish() {
  if (!started_ || finished_) {
    return;
  }
  if (failed_) {
    finished_ = true;
    return;
  }
  if (!manager_ && !try_restart()) {
    // The final drain ignores the backoff clock; an unrecoverable image
    // ends the run with only the committed results.
    finished_ = true;
    return;
  }
  manager_->finish();
  commit_results();
  // Final post-flush image: open windows have fired, so this is the
  // durable shutdown snapshot (what a daemon persists on SIGTERM).
  image_ = encode_checkpoint(manager_->checkpoint());
  stats_.checkpoint_bytes = image_.size();
  if (!config_.checkpoint_path.empty()) {
    write_image_file();
  }
  journal_.clear();
  ++stats_.checkpoints;
  finished_ = true;
}

void Supervisor::inject_crash() {
  if (!started_ || finished_ || failed_ || !manager_) {
    return;
  }
  ++stats_.crashes_injected;
  FLUXFP_OBS_COUNTER_INC_SCHED("fluxfp_supervisor_crashes_injected_total",
                               "Shard kills injected by the fault plan");
  crash_shard();
}

const std::vector<EpochResult>& Supervisor::results(
    std::uint32_t user) const {
  const auto it = committed_.find(user);
  if (it == committed_.end()) {
    throw std::invalid_argument("Supervisor: unknown user");
  }
  return it->second;
}

std::uint64_t Supervisor::exact_epochs() const {
  std::uint64_t total = 0;
  for (const std::uint32_t u : users_) {
    total += manager_->session(u).stats().epochs_fired;
  }
  return total;
}

}  // namespace fluxfp::stream
