#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>

#include "stream/event.hpp"
#include "support/thread_annotations.hpp"

namespace fluxfp::stream {

/// What a full queue does to a producer.
enum class QueuePolicy {
  /// push() blocks until a consumer makes room — lossless backpressure.
  /// This is the policy the determinism contract assumes: every event is
  /// delivered, so replaying a trace yields the same folding at any worker
  /// count.
  kBlock,
  /// push() evicts the oldest queued event and never blocks — bounded
  /// latency under overload at the cost of losing the events least likely
  /// to still matter. Every eviction is counted (QueueStats::dropped);
  /// a tracker downstream sees the dropped readings as missing.
  kDropOldest,
};

/// Monotonic counters describing a queue's life so far. Conservation
/// invariant at any instant (under the lock): pushed == popped + dropped +
/// evicted + size().
struct QueueStats {
  std::uint64_t pushed = 0;   ///< accepted events (includes later-evicted)
  std::uint64_t popped = 0;   ///< events handed to consumers
  std::uint64_t dropped = 0;  ///< evictions under kDropOldest
  std::uint64_t evicted = 0;  ///< targeted removals via evict_one()
  std::size_t max_depth = 0;  ///< high-water mark of the backlog
};

/// Bounded multi-producer/single-consumer event queue with an explicit
/// overflow policy. Plain mutex + condition variables: the per-event cost
/// is dwarfed by the filtering work downstream, and the simple protocol is
/// trivially clean under TSan — this queue and the TrackerManager are the
/// first cross-thread mutable state in the repo.
///
/// Any thread may push; pop is intended for one consumer (more would work,
/// but per-user event ordering — the determinism anchor — is only
/// guaranteed with a single consumer per queue).
class EventQueue {
 public:
  /// `capacity` >= 1 bounds the backlog. Throws std::invalid_argument on 0.
  explicit EventQueue(std::size_t capacity,
                      QueuePolicy policy = QueuePolicy::kBlock);

  /// Enqueues `event`. kBlock: waits for room (returns false only when the
  /// queue was closed while waiting or before the call). kDropOldest:
  /// always succeeds immediately, evicting the oldest event when full.
  bool push(const FluxEvent& event);

  /// Dequeues into `out`, waiting for an event. Returns false when the
  /// queue is closed AND drained — the consumer's termination signal.
  bool pop(FluxEvent& out);

  /// Non-blocking pop; false when currently empty (queue may still be
  /// open).
  bool try_pop(FluxEvent& out);

  /// Removes the oldest queued event of `user` (admission-policy
  /// displacement: TrackerManager's kShedLowestPriority evicts a queued
  /// low-priority event to admit a higher-priority one). Returns false
  /// when no event of that user is queued. Frees a slot, so a kBlock
  /// producer waiting for room is woken.
  bool evict_one(std::uint32_t user);

  /// Closes the queue: subsequent pushes fail, blocked producers and the
  /// consumer wake up. Already-queued events remain poppable.
  void close();

  bool closed() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  QueuePolicy policy() const { return policy_; }

  /// Snapshot of the counters (consistent, taken under the lock).
  QueueStats stats() const;

 private:
  const std::size_t capacity_;
  const QueuePolicy policy_;

  mutable support::Mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<FluxEvent> items_ FLUXFP_GUARDED_BY(mutex_);
  QueueStats stats_ FLUXFP_GUARDED_BY(mutex_);
  bool closed_ FLUXFP_GUARDED_BY(mutex_) = false;
};

}  // namespace fluxfp::stream
