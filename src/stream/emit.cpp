#include "stream/emit.hpp"

#include <stdexcept>

#include "net/flux.hpp"

namespace fluxfp::stream {

std::vector<FluxEvent> readings_events(std::span<const std::size_t> sniffers,
                                       std::span<const double> readings,
                                       std::uint32_t user,
                                       std::uint32_t epoch, double time) {
  if (sniffers.size() != readings.size()) {
    throw std::invalid_argument("readings_events: size mismatch");
  }
  std::vector<FluxEvent> events;
  events.reserve(readings.size());
  for (std::size_t i = 0; i < readings.size(); ++i) {
    if (net::is_missing(readings[i])) {
      continue;  // an outage is the absence of an event
    }
    events.push_back({time, user, epoch,
                      static_cast<std::uint32_t>(sniffers[i]), readings[i]});
  }
  return events;
}

std::vector<FluxEvent> window_events(const net::UnitDiskGraph& graph,
                                     const net::FluxMap& flux,
                                     std::span<const std::size_t> sniffers,
                                     std::uint32_t user, std::uint32_t epoch,
                                     double time, bool smooth) {
  return readings_events(sniffers,
                         net::gather_readings(graph, flux, sniffers, smooth),
                         user, epoch, time);
}

std::vector<FluxEvent> scenario_events(
    const net::UnitDiskGraph& graph,
    std::span<const sim::RoundObservation> obs,
    std::span<const std::size_t> sniffers, std::uint32_t user, bool smooth) {
  std::vector<FluxEvent> events;
  events.reserve(obs.size() * sniffers.size());
  for (std::size_t round = 0; round < obs.size(); ++round) {
    const auto burst =
        window_events(graph, obs[round].flux, sniffers, user,
                      static_cast<std::uint32_t>(round), obs[round].time,
                      smooth);
    events.insert(events.end(), burst.begin(), burst.end());
  }
  return events;
}

}  // namespace fluxfp::stream
