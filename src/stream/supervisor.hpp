#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/faults.hpp"
#include "stream/checkpoint.hpp"
#include "stream/manager.hpp"

namespace fluxfp::stream {

/// Supervision policy. All deadlines and backoffs are *virtual time*
/// (event timestamps) — the supervisor never consults a wall clock, so a
/// supervised replay of a recorded trace makes the same decisions at any
/// playback speed.
struct SupervisorConfig {
  /// Accepted events between supervision boundaries. At each boundary the
  /// shard is quiesced, the fault plan and health probe are evaluated, and
  /// — when the shard survives them — a fresh checkpoint is committed.
  /// 0 (the default) leaves the cadence to checkpoint_every_epochs: an
  /// event is microseconds of routing, while a snapshot is a quiesce plus
  /// a full state encode, so counting raw events makes supervision cost
  /// scale with ingest rate instead of with work done. Set it when a test
  /// or tool needs boundaries at exact event counts.
  std::size_t checkpoint_every_events = 0;

  /// Fired epochs between supervision boundaries — the production cadence.
  /// Epochs are the unit of real filtering work (an SMC step each), so the
  /// snapshot cost amortizes against actual progress no matter how fast
  /// events arrive. Both cadences 0 disables periodic supervision (only
  /// the start() baseline and the finish() final image are taken).
  std::size_t checkpoint_every_epochs = 32;

  /// Heartbeat: with work pending, the shard must fold at least one event
  /// every this many virtual seconds, or it is declared stalled and
  /// restarted. 0 disables the heartbeat. Meaningful for paced (live-rate)
  /// ingestion, where virtual time tracks arrival time; a max-speed trace
  /// replay outruns the workers by design, so there the deadline must
  /// exceed the trace's whole time span (or stay 0). In-process recovery
  /// assumes the worker can still be joined (queue-level stalls,
  /// probe-detected divergence); a thread wedged inside a filter step
  /// needs process-level supervision, which is out of scope here.
  double heartbeat_deadline = 0.0;

  /// Consecutive failed incarnations (no checkpoint committed in between)
  /// tolerated before the supervisor gives up and sheds every session.
  std::size_t max_restarts = 3;

  /// Exponential backoff between a crash and its restart, in virtual
  /// seconds: the k-th consecutive failure waits
  /// backoff_base * backoff_factor^(k-1). Events offered while the shard
  /// is down are journaled (not lost) and replayed at restart.
  double backoff_base = 1.0;
  double backoff_factor = 2.0;

  /// When non-empty, every committed checkpoint is also written here as a
  /// FLUXFPC1 file (the durable copy; the supervisor restores from its
  /// in-memory image).
  std::string checkpoint_path;

  /// Injected crash schedule over fired epochs (sim/faults.hpp). The
  /// soak tests drive kill/restore cycles through this.
  sim::ShardCrashPlan fault;

  /// Divergence probe, evaluated on the quiesced shard at each
  /// supervision boundary; returning false declares the shard unhealthy
  /// (e.g. non-finite estimates) and forces a restart from the last good
  /// checkpoint. Null = always healthy.
  std::function<bool(const TrackerManager&)> health_probe;
};

/// Counters of one supervised run.
struct SupervisorStats {
  std::uint64_t checkpoints = 0;       ///< images committed (incl. baseline)
  std::uint64_t restarts = 0;          ///< successful restore+replay cycles
  std::uint64_t crashes_injected = 0;  ///< fault plan + inject_crash()
  std::uint64_t stalls_detected = 0;   ///< heartbeat lapses + failed probes
  std::uint64_t replayed_events = 0;   ///< journal events re-offered
  std::uint64_t events_deferred = 0;   ///< journaled while the shard was down
  std::uint64_t sessions_shed = 0;     ///< sessions lost to give-up
  std::uint64_t checkpoint_bytes = 0;  ///< size of the newest image
};

/// Crash-recovery loop over a TrackerManager: periodically checkpoints the
/// live shard (FLUXFPC1), journals every accepted event since the last
/// checkpoint, detects crashed/stalled/diverged shards, and restarts them
/// from the last good image — restore, then journal replay — with bounded
/// retries and exponential backoff in virtual time.
///
/// Recovery is EXACT, not approximate: a checkpoint is a consistent cut at
/// an event boundary (quiesce), and checkpoint + journal always
/// reconstruct the precise accepted-event prefix, so the results of a
/// supervised run are bit-identical to an uninterrupted run no matter
/// when or how often the shard dies (under QueuePolicy::kBlock and
/// lossless admission; shedding policies lose this by design). Every
/// restart round-trips the state through encoded FLUXFPC1 bytes — the
/// serialized format, not the in-memory structs, is what recovery relies
/// on.
///
/// The factory builds a fresh, NOT-started manager with the same sessions
/// (same construction inputs: model, sniffers, config, seed) each time —
/// the supervisor owns start/restore/replay. Like quiesce(), the
/// supervisor is driven by one coordinating thread: offer() and the
/// lifecycle calls must not race each other.
///
/// Threading: the Supervisor deliberately owns no mutex — the
/// single-coordinator contract above IS its synchronization. Where the
/// coordinator role is shared across threads (netio::Server), the
/// Supervisor object itself is declared FLUXFP_GUARDED_BY the caller's
/// serializing mutex (Server::ingest_mutex_), so Clang's capability
/// analysis rejects any unserialized interaction at compile time instead
/// of leaving the contract to this comment.
class Supervisor {
 public:
  using ManagerFactory = std::function<std::unique_ptr<TrackerManager>()>;

  /// Throws std::invalid_argument on a null factory or a non-positive
  /// backoff/cadence combination that cannot make progress.
  Supervisor(ManagerFactory factory, SupervisorConfig config);

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Builds and starts the first incarnation and commits the epoch-zero
  /// baseline image (a crash before the first boundary needs something to
  /// restore). Throws std::logic_error when already started, and
  /// std::invalid_argument when the factory misbehaves (null, already
  /// started, or no sessions).
  void start();

  /// Offers one event to the supervised shard. Accepted events are
  /// journaled before this returns, so a later crash cannot lose them.
  /// While the shard is down (backoff), events for known users are
  /// deferred — journaled and reported kAccepted — and replayed at
  /// restart; a supervisor that gave up reports kClosed.
  PushStatus offer(const FluxEvent& event);

  /// Drains the live shard until every accepted event has been folded —
  /// the read barrier for mid-stream queries (netio answers QUERY_ESTIMATE
  /// and METRICS off a quiesced shard). Returns true when the shard is up
  /// and now idle; false while it is down (backoff) or after give-up —
  /// journaled deferred events are NOT folded until the restart. Same
  /// single-coordinator contract as offer().
  bool quiesce();

  /// Drains and stops: restarts the shard if it is down (the final drain
  /// ignores the backoff clock), finishes it (flushing open windows),
  /// commits all remaining results, and takes the final post-flush image.
  void finish();

  /// Test / fault hook: kill the live shard now, exactly as a scheduled
  /// crash would — all state since the last checkpoint is discarded. No-op
  /// while the shard is already down.
  void inject_crash();

  bool started() const { return started_; }
  bool finished() const { return finished_; }
  /// True once the supervisor exhausted max_restarts and shed its
  /// sessions; offer() reports kClosed from then on.
  bool failed() const { return failed_; }
  /// True while the shard is between a crash and its backoff-gated
  /// restart.
  bool shard_down() const { return started_ && manager_ == nullptr; }

  /// Registered user ids (checkpoint order).
  const std::vector<std::uint32_t>& users() const { return users_; }

  /// Committed per-epoch results of one session, in fired order —
  /// complete after finish(). Throws std::invalid_argument on an unknown
  /// user.
  const std::vector<EpochResult>& results(std::uint32_t user) const;

  /// Newest committed FLUXFPC1 image (what a restart restores from).
  const std::string& checkpoint_image() const { return image_; }

  /// The live incarnation, or nullptr while the shard is down. Exposes
  /// final ManagerStats of the last incarnation after finish().
  const TrackerManager* manager() const { return manager_.get(); }

  SupervisorStats stats() const { return stats_; }

 private:
  /// Quiesce, evaluate fault plan + health probe, then either kill the
  /// shard or commit a checkpoint. Requires a live shard.
  void supervise();
  /// Commits a checkpoint of the (quiesced) live shard: results, encoded
  /// image, optional file, journal truncation. `epochs` is the exact
  /// fired-epoch total at the cut.
  void commit_checkpoint(std::uint64_t epochs);
  /// Appends the live shard's not-yet-committed results to committed_.
  void commit_results();
  /// Writes image_ to config_.checkpoint_path (the durable copy).
  void write_image_file() const;
  /// Kills the live shard and arms the backoff clock (or gives up).
  void crash_shard();
  void give_up();
  /// Decodes the newest image into a fresh incarnation and replays the
  /// journal. False when recovery is impossible (gives up internally).
  bool try_restart();
  /// Exact fired-epoch total across sessions; requires a quiesced shard.
  std::uint64_t exact_epochs() const;

  ManagerFactory factory_;
  SupervisorConfig config_;
  std::unique_ptr<TrackerManager> manager_;
  std::vector<std::uint32_t> users_;
  /// Results committed up to the newest checkpoint (crash-durable).
  std::unordered_map<std::uint32_t, std::vector<EpochResult>> committed_;
  /// Per user: how many of the live incarnation's results are already in
  /// committed_ (resets to 0 at each restart).
  std::unordered_map<std::uint32_t, std::size_t> manager_committed_;
  /// Accepted events since the newest checkpoint, in offer order.
  std::vector<FluxEvent> journal_;
  std::string image_;  ///< newest FLUXFPC1 bytes
  SupervisorStats stats_;

  bool started_ = false;
  bool finished_ = false;
  bool failed_ = false;
  std::size_t consecutive_failures_ = 0;
  double vnow_ = 0.0;        ///< newest event time seen
  double restart_at_ = 0.0;  ///< backoff gate while the shard is down
  std::uint64_t accepted_since_check_ = 0;
  std::uint64_t routed_since_manager_ = 0;  ///< offers accepted this incarnation
  std::uint64_t last_processed_seen_ = 0;
  double last_progress_vtime_ = 0.0;
  std::uint64_t epochs_at_checkpoint_ = 0;  ///< cumulative, exact at the cut
  /// Incarnation-local epochs_fired_live() at the last checkpoint — the
  /// epoch-cadence trigger (the live counter resets with each incarnation,
  /// the cumulative one above does not).
  std::uint64_t epochs_live_at_checkpoint_ = 0;
};

}  // namespace fluxfp::stream
