#pragma once

// Instrumentation call sites for the hot paths. Compiled out entirely when
// FLUXFP_OBS is OFF (no obs symbol is referenced, so hot-path libraries do
// not even link fluxfp_obs); when ON, each macro caches its metric behind a
// function-local static and pays one relaxed atomic op per hit, skipped
// when obs::enabled() is false.
//
// The name/help arguments must be string literals: the first expansion to
// run registers the metric, later ones reuse the cached reference.

#if defined(FLUXFP_OBS_ENABLED)

#include <cstdint>

#include "obs/obs.hpp"

#define FLUXFP_OBS_CAT_INNER(a, b) a##b
#define FLUXFP_OBS_CAT(a, b) FLUXFP_OBS_CAT_INNER(a, b)

/// Adds `n` to a kStable counter.
#define FLUXFP_OBS_COUNTER_ADD(name, help, n)                                \
  do {                                                                       \
    static ::fluxfp::obs::Counter& FLUXFP_OBS_CAT(fluxfp_obs_c_, __LINE__) = \
        ::fluxfp::obs::MetricsRegistry::global().counter((name), (help));    \
    if (::fluxfp::obs::enabled()) {                                          \
      FLUXFP_OBS_CAT(fluxfp_obs_c_, __LINE__).inc((n));                      \
    }                                                                        \
  } while (false)

/// Adds `n` to a kScheduling counter (value depends on thread interleaving
/// or worker layout; excluded from stable exports).
#define FLUXFP_OBS_COUNTER_ADD_SCHED(name, help, n)                          \
  do {                                                                       \
    static ::fluxfp::obs::Counter& FLUXFP_OBS_CAT(fluxfp_obs_c_, __LINE__) = \
        ::fluxfp::obs::MetricsRegistry::global().counter(                    \
            (name), (help), ::fluxfp::obs::Determinism::kScheduling);        \
    if (::fluxfp::obs::enabled()) {                                          \
      FLUXFP_OBS_CAT(fluxfp_obs_c_, __LINE__).inc((n));                      \
    }                                                                        \
  } while (false)

#define FLUXFP_OBS_COUNTER_INC(name, help) \
  FLUXFP_OBS_COUNTER_ADD(name, help, 1)

#define FLUXFP_OBS_COUNTER_INC_SCHED(name, help) \
  FLUXFP_OBS_COUNTER_ADD_SCHED(name, help, 1)

/// Observes an integer value into a kStable histogram with count_bounds()
/// (powers of two, 1..1024) — iteration counts, effective sample sizes.
#define FLUXFP_OBS_COUNT_OBSERVE(name, help, v)                               \
  do {                                                                        \
    static ::fluxfp::obs::Histogram& FLUXFP_OBS_CAT(fluxfp_obs_h_,            \
                                                    __LINE__) =               \
        ::fluxfp::obs::MetricsRegistry::global().histogram(                   \
            (name), (help), ::fluxfp::obs::count_bounds());                   \
    if (::fluxfp::obs::enabled()) {                                           \
      FLUXFP_OBS_CAT(fluxfp_obs_h_, __LINE__)                                 \
          .observe(static_cast<std::uint64_t>(v));                            \
    }                                                                         \
  } while (false)

/// Adds a signed delta to a kScheduling gauge. add() commutes, so
/// concurrent +1/-1 call sites (connection open/close, queue depth) keep
/// the level exact without ordering.
#define FLUXFP_OBS_GAUGE_ADD_SCHED(name, help, delta)                       \
  do {                                                                      \
    static ::fluxfp::obs::Gauge& FLUXFP_OBS_CAT(fluxfp_obs_g_, __LINE__) =  \
        ::fluxfp::obs::MetricsRegistry::global().gauge(                     \
            (name), (help), ::fluxfp::obs::Determinism::kScheduling);       \
    if (::fluxfp::obs::enabled()) {                                         \
      FLUXFP_OBS_CAT(fluxfp_obs_g_, __LINE__).add((delta));                 \
    }                                                                       \
  } while (false)

/// Folds a value into a kStable max-gauge (record_max commutes, so worker
/// threads may race on it without breaking stable exports).
#define FLUXFP_OBS_GAUGE_MAX(name, help, v)                                \
  do {                                                                     \
    static ::fluxfp::obs::Gauge& FLUXFP_OBS_CAT(fluxfp_obs_g_, __LINE__) = \
        ::fluxfp::obs::MetricsRegistry::global().gauge((name), (help));    \
    if (::fluxfp::obs::enabled()) {                                        \
      FLUXFP_OBS_CAT(fluxfp_obs_g_, __LINE__).record_max((v));             \
    }                                                                      \
  } while (false)

/// Declares a scoped span `var` timing the rest of the enclosing block into
/// a kScheduling latency histogram (bounds 1us..1s).
#define FLUXFP_OBS_SPAN(var, name, help)                                      \
  static ::fluxfp::obs::Histogram& FLUXFP_OBS_CAT(var, _hist) =               \
      ::fluxfp::obs::MetricsRegistry::global().latency_histogram((name),      \
                                                                 (help));     \
  const ::fluxfp::obs::ObsSpan var(FLUXFP_OBS_CAT(var, _hist))

#else  // !FLUXFP_OBS_ENABLED

#define FLUXFP_OBS_COUNTER_ADD(name, help, n) ((void)0)
#define FLUXFP_OBS_COUNTER_ADD_SCHED(name, help, n) ((void)0)
#define FLUXFP_OBS_COUNTER_INC(name, help) ((void)0)
#define FLUXFP_OBS_COUNTER_INC_SCHED(name, help) ((void)0)
#define FLUXFP_OBS_GAUGE_ADD_SCHED(name, help, delta) ((void)0)
#define FLUXFP_OBS_COUNT_OBSERVE(name, help, v) ((void)0)
#define FLUXFP_OBS_GAUGE_MAX(name, help, v) ((void)0)
#define FLUXFP_OBS_SPAN(var, name, help) ((void)0)

#endif  // FLUXFP_OBS_ENABLED
