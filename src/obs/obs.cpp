#include "obs/obs.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace fluxfp::obs {

namespace {

std::atomic<bool> g_enabled{true};

const SpanClock* default_clock() {
  static const MonotonicClock clock;
  return &clock;
}

bool valid_name(std::string_view name) {
  if (name.empty() || name.front() < 'a' || name.front() > 'z') {
    return false;
  }
  return std::all_of(name.begin(), name.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
  });
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

/// Shortest round-trip double formatting; "%.17g" reproduces the exact bit
/// pattern on re-parse, so two exports of the same value are byte-equal.
std::string format_double(double v) {
  std::array<char, 40> buf{};
  std::snprintf(buf.data(), buf.size(), "%.17g", v);
  return std::string(buf.data());
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void Gauge::add(double delta) {
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + delta,
                                   std::memory_order_relaxed)) {
  }
}

void Gauge::record_max(double v) {
  double cur = v_.load(std::memory_order_relaxed);
  while (cur < v &&
         !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::span<const std::uint64_t> bounds)
    : bounds_(bounds.begin(), bounds.end()) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: bounds must be non-empty");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument(
          "Histogram: bounds must be strictly increasing");
    }
  }
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(std::uint64_t v) {
  // First bucket with v <= bound ("le" semantics); past-the-end is +Inf.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  if (i > bounds_.size()) {
    throw std::out_of_range("Histogram::bucket_count: bad bucket index");
  }
  return buckets_[i].load(std::memory_order_relaxed);
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
}

std::uint64_t MonotonicClock::now_micros() const {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t).count());
}

std::span<const std::uint64_t> latency_bounds_micros() {
  static constexpr std::array<std::uint64_t, 19> kBounds = {
      1,    2,    5,     10,    20,    50,     100,    200,    500, 1000,
      2000, 5000, 10000, 20000, 50000, 100000, 200000, 500000, 1000000};
  return kBounds;
}

std::span<const std::uint64_t> count_bounds() {
  static constexpr std::array<std::uint64_t, 11> kBounds = {
      1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
  return kBounds;
}

struct MetricsRegistry::Entry {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  Determinism det = Determinism::kStable;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

MetricsRegistry& MetricsRegistry::global() {
  // Leaked: instrumented worker threads may still touch metrics during
  // static destruction; a destructed registry would be a use-after-free.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::MetricsRegistry() : clock_(default_clock()) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    std::string_view name, std::string_view help, MetricKind kind,
    Determinism det, std::span<const std::uint64_t> bounds) {
  support::MutexLock lock(mutex_);
  const auto it = index_.find(name);
  if (it != index_.end()) {
    Entry& e = *entries_[it->second];
    if (e.kind != kind) {
      throw std::invalid_argument("MetricsRegistry: metric '" + e.name +
                                  "' already registered as a different kind");
    }
    if (kind == MetricKind::kHistogram &&
        !std::ranges::equal(e.histogram->bounds(), bounds)) {
      throw std::invalid_argument("MetricsRegistry: histogram '" + e.name +
                                  "' already registered with other bounds");
    }
    return e;
  }
  if (!valid_name(name)) {
    throw std::invalid_argument("MetricsRegistry: bad metric name '" +
                                std::string(name) +
                                "' (want [a-z][a-z0-9_]*)");
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->kind = kind;
  entry->det = det;
  switch (kind) {
    case MetricKind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      entry->histogram = std::make_unique<Histogram>(bounds);
      break;
  }
  entries_.push_back(std::move(entry));
  index_.emplace(entries_.back()->name, entries_.size() - 1);
  return *entries_.back();
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  Determinism det) {
  return *find_or_create(name, help, MetricKind::kCounter, det, {}).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              Determinism det) {
  return *find_or_create(name, help, MetricKind::kGauge, det, {}).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help,
                                      std::span<const std::uint64_t> bounds,
                                      Determinism det) {
  return *find_or_create(name, help, MetricKind::kHistogram, det, bounds)
              .histogram;
}

Histogram& MetricsRegistry::latency_histogram(std::string_view name,
                                              std::string_view help,
                                              Determinism det) {
  return histogram(name, help, latency_bounds_micros(), det);
}

const SpanClock& MetricsRegistry::clock() const {
  return *clock_.load(std::memory_order_acquire);
}

void MetricsRegistry::set_clock(const SpanClock* clock) {
  clock_.store(clock != nullptr ? clock : default_clock(),
               std::memory_order_release);
}

std::string MetricsRegistry::export_text(bool include_scheduling) const {
  support::MutexLock lock(mutex_);
  std::string out;
  for (const auto& [name, idx] : index_) {
    const Entry& e = *entries_[idx];
    if (!include_scheduling && e.det == Determinism::kScheduling) {
      continue;
    }
    if (!e.help.empty()) {
      out += "# HELP " + name + " " + e.help + "\n";
    }
    out += "# TYPE " + name + " " + kind_name(e.kind) + "\n";
    switch (e.kind) {
      case MetricKind::kCounter:
        out += name + " " + std::to_string(e.counter->value()) + "\n";
        break;
      case MetricKind::kGauge:
        out += name + " " + format_double(e.gauge->value()) + "\n";
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *e.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < h.bounds().size(); ++b) {
          cumulative += h.bucket_count(b);
          out += name + "_bucket{le=\"" + std::to_string(h.bounds()[b]) +
                 "\"} " + std::to_string(cumulative) + "\n";
        }
        cumulative += h.bucket_count(h.bounds().size());
        out += name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
               "\n";
        out += name + "_sum " + std::to_string(h.sum()) + "\n";
        out += name + "_count " + std::to_string(cumulative) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::export_json(bool include_scheduling) const {
  support::MutexLock lock(mutex_);
  std::string out = "{\n  \"metrics\": [";
  bool first = true;
  for (const auto& [name, idx] : index_) {
    const Entry& e = *entries_[idx];
    if (!include_scheduling && e.det == Determinism::kScheduling) {
      continue;
    }
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + name + "\", \"kind\": \"" +
           kind_name(e.kind) + "\", \"stable\": " +
           (e.det == Determinism::kStable ? "true" : "false");
    switch (e.kind) {
      case MetricKind::kCounter:
        out += ", \"value\": " + std::to_string(e.counter->value());
        break;
      case MetricKind::kGauge:
        out += ", \"value\": " + format_double(e.gauge->value());
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *e.histogram;
        out += ", \"count\": " + std::to_string(h.count()) +
               ", \"sum\": " + std::to_string(h.sum()) + ", \"buckets\": [";
        for (std::size_t b = 0; b <= h.bounds().size(); ++b) {
          const std::string le = b < h.bounds().size()
                                     ? std::to_string(h.bounds()[b])
                                     : std::string("+Inf");
          out += (b == 0 ? "" : ", ");
          out += "{\"le\": \"" + le +
                 "\", \"count\": " + std::to_string(h.bucket_count(b)) + "}";
        }
        out += "]";
        break;
      }
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

void MetricsRegistry::reset_values() {
  support::MutexLock lock(mutex_);
  for (const auto& entry : entries_) {
    switch (entry->kind) {
      case MetricKind::kCounter:
        entry->counter->reset();
        break;
      case MetricKind::kGauge:
        entry->gauge->reset();
        break;
      case MetricKind::kHistogram:
        entry->histogram->reset();
        break;
    }
  }
}

std::size_t MetricsRegistry::size() const {
  support::MutexLock lock(mutex_);
  return entries_.size();
}

ObsSpan::ObsSpan(Histogram& sink) : sink_(&sink) {
  if (enabled()) {
    clock_ = &MetricsRegistry::global().clock();
    start_ = clock_->now_micros();
  }
}

ObsSpan::~ObsSpan() {
  if (clock_ != nullptr) {
    const std::uint64_t end = clock_->now_micros();
    sink_->observe(end >= start_ ? end - start_ : 0);
  }
}

}  // namespace fluxfp::obs
