#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/thread_annotations.hpp"

namespace fluxfp::obs {

/// Whether instrumented call sites record anything. A process-wide runtime
/// switch (default on) underneath the FLUXFP_OBS compile-time gate: the
/// macros in obs/instrument.hpp check it before touching a metric, so the
/// overhead benchmark can compare on-vs-off inside one binary.
bool enabled();
void set_enabled(bool on);

/// How a metric behaves under the determinism contract.
///
/// kStable metrics are pure functions of the event/input content — the same
/// replayed trace yields the same values at any worker count, so they are
/// part of the bit-identical-export guarantee. kScheduling metrics depend
/// on thread interleaving, worker layout, or wall-clock (queue drops, high
/// watermarks, span latencies) and are excluded from stable exports.
enum class Determinism { kStable, kScheduling };

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Monotonically increasing event count. All mutation is a relaxed atomic
/// add: counters never order anything, and exports after a quiescing join
/// observe every prior increment through the join's synchronization.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written (or max-folded) level. set() is last-writer-wins and thus
/// only deterministic from single-threaded call sites; concurrent writers
/// must use record_max()/add(), which commute.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta);
  void record_max(double v);
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-boundary histogram over non-negative integer values (micros,
/// counts). Boundaries are inclusive upper edges in the Prometheus "le"
/// sense: a value v lands in the FIRST bucket with v <= bound; values above
/// the last bound land in the implicit +Inf bucket. Values and the running
/// sum are integers so that accumulation commutes — fold order can never
/// change an export.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::span<const std::uint64_t> bounds);

  void observe(std::uint64_t v);
  std::uint64_t count() const;
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Per-bucket (non-cumulative) count; index bounds().size() is +Inf.
  std::uint64_t bucket_count(std::size_t i) const;
  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  void reset();

 private:
  std::vector<std::uint64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds+1 slots
  std::atomic<std::uint64_t> sum_{0};
};

/// Time source for spans. Injected so record/replay runs can pin span
/// timing (ManualClock) while live runs read the monotonic clock — never
/// the wall clock, which would leak irreproducible state into exports.
class SpanClock {
 public:
  virtual ~SpanClock() = default;
  virtual std::uint64_t now_micros() const = 0;
};

/// std::chrono::steady_clock in microseconds. The default span clock.
class MonotonicClock final : public SpanClock {
 public:
  std::uint64_t now_micros() const override;
};

/// Test clock: time advances only when told to.
class ManualClock final : public SpanClock {
 public:
  std::uint64_t now_micros() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void set_micros(std::uint64_t t) {
    now_.store(t, std::memory_order_relaxed);
  }
  void advance_micros(std::uint64_t dt) {
    now_.fetch_add(dt, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> now_{0};
};

/// Bucket boundaries for span latency histograms: 1us .. 1s, roughly
/// log-spaced (1-2-5 per decade).
std::span<const std::uint64_t> latency_bounds_micros();

/// Bucket boundaries for small-count histograms (ESS, iteration counts):
/// powers of two, 1 .. 1024.
std::span<const std::uint64_t> count_bounds();

/// Process-wide metric registry. Registration takes a mutex (call sites
/// cache the returned reference behind a function-local static, so the hot
/// path is one relaxed atomic op); metric objects live for the life of the
/// process. Exports iterate the name-sorted index, so output order is
/// deterministic no matter how registration interleaved across threads.
class MetricsRegistry {
 public:
  /// The singleton the instrumentation macros use. Leaked on purpose:
  /// worker threads may outlive static destruction order.
  static MetricsRegistry& global();

  MetricsRegistry();
  ~MetricsRegistry();  // out of line: Entry is incomplete here
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) a metric. Names must match [a-z][a-z0-9_]*; the
  /// first registration of a name fixes its help text, determinism tag and
  /// (for histograms) boundaries. Re-registering under a different kind or
  /// with different boundaries throws std::invalid_argument.
  Counter& counter(std::string_view name, std::string_view help,
                   Determinism det = Determinism::kStable);
  Gauge& gauge(std::string_view name, std::string_view help,
               Determinism det = Determinism::kStable);
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::span<const std::uint64_t> bounds,
                       Determinism det = Determinism::kStable);
  /// histogram() with latency_bounds_micros(); spans are wall-clock-driven,
  /// so the tag defaults to kScheduling.
  Histogram& latency_histogram(std::string_view name, std::string_view help,
                               Determinism det = Determinism::kScheduling);

  /// The clock ObsSpan reads. set_clock(nullptr) restores the monotonic
  /// default; a non-null clock must outlive every span started under it.
  const SpanClock& clock() const;
  void set_clock(const SpanClock* clock);

  /// Prometheus text exposition, metrics in name order. Cumulative "le"
  /// buckets per the format. `include_scheduling` = false restricts the
  /// export to kStable metrics — the byte-identical-across-runs subset.
  std::string export_text(bool include_scheduling = true) const;
  /// JSON snapshot (BENCH_micro.json-style: one flat "metrics" array),
  /// metrics in name order, per-bucket (non-cumulative) counts.
  std::string export_json(bool include_scheduling = true) const;

  /// Zeroes every value; registrations (names, help, bounds) survive.
  void reset_values();
  std::size_t size() const;

 private:
  struct Entry;
  Entry& find_or_create(std::string_view name, std::string_view help,
                        MetricKind kind, Determinism det,
                        std::span<const std::uint64_t> bounds);

  /// Leaf of the canonical lock order: acquirable under any runtime lock
  /// (the instrumentation macros fire inside flow/ingest/conns critical
  /// sections on first registration), and never holds another lock itself.
  mutable support::Mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_ FLUXFP_GUARDED_BY(mutex_);
  /// name -> entries_ index; export iterates this (sorted) view.
  std::map<std::string, std::size_t, std::less<>> index_
      FLUXFP_GUARDED_BY(mutex_);
  std::atomic<const SpanClock*> clock_;
};

/// RAII scoped span: measures the enclosed region on the registry clock and
/// observes the duration (micros) into a latency histogram. When obs is
/// disabled at construction the span never reads the clock.
class ObsSpan {
 public:
  explicit ObsSpan(Histogram& sink);
  ~ObsSpan();
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  Histogram* sink_;
  const SpanClock* clock_ = nullptr;
  std::uint64_t start_ = 0;
};

}  // namespace fluxfp::obs
