#pragma once

#include "geom/sampling.hpp"
#include "net/flux.hpp"
#include "net/graph.hpp"

namespace fluxfp::privacy {

/// Traffic-reshaping countermeasures against flux fingerprinting — the
/// "future work" of §6 ("reshaping the network traffics to prevent
/// malicious detection"), implemented so the ablation bench can measure how
/// much reshaping is needed to break the attack.
enum class CountermeasureKind {
  kNone,
  /// Every node pads its transmissions up to a floor: observed flux becomes
  /// max(flux, pad_level). Flattens the low end of the flux surface.
  kConstantPadding,
  /// The network injects chaff: extra collection trees rooted at random
  /// positions with a fixed stretch, indistinguishable from real sinks.
  kDummyTrees,
  /// Each node randomizes its forwarding amount by a lognormal factor
  /// (duplication/suppression), destroying the fine structure of the map.
  kStretchJitter,
};

/// Parameters for each kind (only the relevant fields are read).
struct CountermeasureConfig {
  CountermeasureKind kind = CountermeasureKind::kNone;
  double pad_level = 0.0;        ///< kConstantPadding: absolute flux floor
  std::size_t dummy_count = 0;   ///< kDummyTrees: chaff trees per window
  double dummy_stretch = 1.0;    ///< kDummyTrees: stretch of each chaff tree
  double jitter_sigma = 0.0;     ///< kStretchJitter: lognormal sigma
};

/// Applies a countermeasure to a window's flux map in place, as the
/// network would before an adversary sniffs it.
class Countermeasure {
 public:
  explicit Countermeasure(CountermeasureConfig config);

  void apply(net::FluxMap& flux, const net::UnitDiskGraph& graph,
             geom::Rng& rng) const;

  const CountermeasureConfig& config() const { return config_; }

  /// Extra per-window transmission overhead this countermeasure added to
  /// the last `apply` call, in flux units (the defense's cost metric).
  double last_overhead() const { return last_overhead_; }

 private:
  CountermeasureConfig config_;
  mutable double last_overhead_ = 0.0;
};

const char* to_string(CountermeasureKind kind);

}  // namespace fluxfp::privacy
