#include "privacy/countermeasure.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "net/routing.hpp"

namespace fluxfp::privacy {

Countermeasure::Countermeasure(CountermeasureConfig config)
    : config_(config) {
  switch (config_.kind) {
    case CountermeasureKind::kNone:
      break;
    case CountermeasureKind::kConstantPadding:
      if (config_.pad_level < 0.0) {
        throw std::invalid_argument("Countermeasure: negative pad level");
      }
      break;
    case CountermeasureKind::kDummyTrees:
      if (config_.dummy_stretch < 0.0) {
        throw std::invalid_argument("Countermeasure: negative dummy stretch");
      }
      break;
    case CountermeasureKind::kStretchJitter:
      if (config_.jitter_sigma < 0.0) {
        throw std::invalid_argument("Countermeasure: negative jitter sigma");
      }
      break;
  }
}

void Countermeasure::apply(net::FluxMap& flux,
                           const net::UnitDiskGraph& graph,
                           geom::Rng& rng) const {
  if (flux.size() != graph.size()) {
    throw std::invalid_argument("Countermeasure::apply: size mismatch");
  }
  last_overhead_ = 0.0;
  switch (config_.kind) {
    case CountermeasureKind::kNone:
      return;
    case CountermeasureKind::kConstantPadding: {
      for (double& v : flux) {
        if (v < config_.pad_level) {
          last_overhead_ += config_.pad_level - v;
          v = config_.pad_level;
        }
      }
      return;
    }
    case CountermeasureKind::kDummyTrees: {
      std::uniform_real_distribution<double> ux(0.0, 1.0);
      for (std::size_t d = 0; d < config_.dummy_count; ++d) {
        // Root the chaff tree at a random node position.
        std::uniform_int_distribution<std::size_t> pick(0, graph.size() - 1);
        const geom::Vec2 root = graph.position(pick(rng));
        const net::CollectionTree tree =
            net::build_collection_tree(graph, root, rng);
        const net::FluxMap chaff = net::tree_flux(tree, config_.dummy_stretch);
        for (std::size_t i = 0; i < flux.size(); ++i) {
          flux[i] += chaff[i];
          last_overhead_ += chaff[i];
        }
      }
      return;
    }
    case CountermeasureKind::kStretchJitter: {
      if (config_.jitter_sigma <= 0.0) {
        return;
      }
      // Lognormal with unit mean: mu = -sigma^2/2.
      std::lognormal_distribution<double> factor(
          -0.5 * config_.jitter_sigma * config_.jitter_sigma,
          config_.jitter_sigma);
      for (double& v : flux) {
        const double nv = v * factor(rng);
        last_overhead_ += std::max(0.0, nv - v);
        v = nv;
      }
      return;
    }
  }
}

const char* to_string(CountermeasureKind kind) {
  switch (kind) {
    case CountermeasureKind::kNone:
      return "none";
    case CountermeasureKind::kConstantPadding:
      return "constant-padding";
    case CountermeasureKind::kDummyTrees:
      return "dummy-trees";
    case CountermeasureKind::kStretchJitter:
      return "stretch-jitter";
  }
  return "?";
}

}  // namespace fluxfp::privacy
