#pragma once

// Clang -Wthread-safety capability annotations, compiled away everywhere
// else. The macros wrap the attributes; the Mutex / MutexLock / UniqueLock
// wrappers below carry the capability so the guarded-by relation over the
// runtime's five threaded layers (pool, queue, manager, supervisor/netio,
// obs registry) is checked exhaustively at compile time instead of only on
// the interleavings a TSan run happens to exercise.
//
// Conventions (enforced by fluxfp-lint's guarded-member rule and by the
// clang-thread-safety CI job):
//   - every member mutated under a mutex carries FLUXFP_GUARDED_BY(m);
//   - functions that assume the caller holds a mutex carry
//     FLUXFP_REQUIRES(m) (the `_locked` suffix convention);
//   - condition-variable wait predicates run with the lock re-acquired but
//     are analyzed as separate functions — open them with
//     `m.assert_held();` so the analysis knows the capability is live;
//   - teardown code that reads state after a join handshake either moves
//     the state out under the lock (preferred) or carries
//     FLUXFP_NO_THREAD_SAFETY_ANALYSIS with a justification.
//
// The canonical lock-acquisition order (outer to inner) is documented in
// DESIGN.md and pinned by fluxfp-lint's lock-order rule:
//   Server::conns_mutex_ -> Server::ingest_mutex_ ->
//   TrackerManager::flow_mutex_ -> EventQueue::mutex_ ->
//   Pool::mutex_ -> MetricsRegistry::mutex_

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define FLUXFP_TSA(x) __attribute__((x))
#else
#define FLUXFP_TSA(x)  // no-op: GCC/MSVC have no capability analysis
#endif

#define FLUXFP_CAPABILITY(x) FLUXFP_TSA(capability(x))
#define FLUXFP_SCOPED_CAPABILITY FLUXFP_TSA(scoped_lockable)
#define FLUXFP_GUARDED_BY(x) FLUXFP_TSA(guarded_by(x))
#define FLUXFP_PT_GUARDED_BY(x) FLUXFP_TSA(pt_guarded_by(x))
#define FLUXFP_ACQUIRED_BEFORE(...) FLUXFP_TSA(acquired_before(__VA_ARGS__))
#define FLUXFP_ACQUIRED_AFTER(...) FLUXFP_TSA(acquired_after(__VA_ARGS__))
#define FLUXFP_REQUIRES(...) FLUXFP_TSA(requires_capability(__VA_ARGS__))
#define FLUXFP_ACQUIRE(...) FLUXFP_TSA(acquire_capability(__VA_ARGS__))
#define FLUXFP_RELEASE(...) FLUXFP_TSA(release_capability(__VA_ARGS__))
#define FLUXFP_TRY_ACQUIRE(...) FLUXFP_TSA(try_acquire_capability(__VA_ARGS__))
#define FLUXFP_EXCLUDES(...) FLUXFP_TSA(locks_excluded(__VA_ARGS__))
#define FLUXFP_ASSERT_CAPABILITY(x) FLUXFP_TSA(assert_capability(x))
#define FLUXFP_RETURN_CAPABILITY(x) FLUXFP_TSA(lock_returned(x))
#define FLUXFP_NO_THREAD_SAFETY_ANALYSIS FLUXFP_TSA(no_thread_safety_analysis)

namespace fluxfp::support {

/// std::mutex carrying the "mutex" capability. Same cost, same TSan
/// visibility; the only addition is that Clang now tracks who holds it.
class FLUXFP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FLUXFP_ACQUIRE() { m_.lock(); }
  void unlock() FLUXFP_RELEASE() { m_.unlock(); }
  bool try_lock() FLUXFP_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// Tells the analysis (not the runtime) that the calling context holds
  /// this mutex. The one sanctioned use is the first statement of a
  /// condition-variable wait predicate, which really does run under the
  /// re-acquired lock but is analyzed as a standalone function.
  void assert_held() const FLUXFP_ASSERT_CAPABILITY(this) {}

  /// The underlying mutex, for std::condition_variable interop.
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// std::lock_guard over Mutex: scope-long exclusive hold, no early unlock.
class FLUXFP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) FLUXFP_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() FLUXFP_RELEASE() { m_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

/// std::unique_lock over Mutex: supports early unlock() / re-lock() (the
/// unlock-before-notify pattern) and condition-variable waits via
/// native(). Construction acquires; destruction releases if still held.
class FLUXFP_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) FLUXFP_ACQUIRE(m) : lock_(m.native()) {}
  ~UniqueLock() FLUXFP_RELEASE() {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() FLUXFP_ACQUIRE() { lock_.lock(); }
  void unlock() FLUXFP_RELEASE() { lock_.unlock(); }

  /// The underlying lock, for std::condition_variable::wait. The wait
  /// predicate must open with `m.assert_held()` on the owning Mutex.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace fluxfp::support
